//! Persistent cross-resolution block-synthesis cache.
//!
//! The paper's designers amortized block design effort by reusing layouts:
//! the 10/11/12/13-bit flows share many `(m, input-accuracy)` MDAC blocks
//! whose derived requirements are *numerically identical* (capacitor
//! sizing, settling and gain budgets depend on the stage spec and process,
//! not the total resolution). [`BlockCache`] makes that reuse mechanical:
//! it outlives a candidate set and a `flow` resolution run, keyed by
//! `(template, normalized spec)`.
//!
//! Two reuse tiers:
//!
//! * **Exact hits** — an entry whose normalized requirement fingerprint
//!   matches skips synthesis entirely.
//! * **Near hits** — the closest same-template entry (in the paper's
//!   `16·Δm + ΔA` block metric) seeds a warm-started retargeting run for a
//!   block that must still be synthesized.
//!
//! The [`CachePolicy`] decides how much provenance an exact hit must carry:
//!
//! * [`CachePolicy::Reproducible`] (default) only reuses an entry whose
//!   **provenance fingerprint** — a hash chain over the exact requirement
//!   bits, the synthesis config and the whole warm-start ancestry — matches
//!   what the current plan would compute, and never seeds near hits.
//!   Synthesis is deterministic in those inputs, so a hit is bit-identical
//!   to re-running the block: cached, cache-cold and serial-oracle runs all
//!   produce the same candidate sets (property-tested).
//! * [`CachePolicy::Aggressive`] reuses any entry for the same normalized
//!   spec and config regardless of how it was warm-started, and seeds near
//!   hits. Results stay deterministic *given the cache state* (the serial
//!   and parallel executors still agree bit for bit) but may differ from a
//!   cache-cold run — the trade the multi-resolution flow makes for its
//!   wall-clock win.

use crate::flow::{OtaRequirements, TemplateKind};

fn template_tag(t: TemplateKind) -> u8 {
    t.tag()
}
use adc_numerics::quant::Fingerprint;
use adc_synth::SynthResult;
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Reuse policy of a [`BlockCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Only provenance-exact hits; no near-hit seeding. Bit-identical to
    /// cache-cold synthesis.
    #[default]
    Reproducible,
    /// Any same-spec/same-config hit; near hits seed warm starts. Maximum
    /// reuse, deterministic given the cache state.
    Aggressive,
}

/// Cumulative counters over the lifetime of a [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-hit lookups attempted.
    pub lookups: usize,
    /// Exact hits (synthesis skipped).
    pub hits: usize,
    /// Near hits handed out as warm-start seeds.
    pub near_seeds: usize,
    /// Entries inserted (dedup'd re-inserts not counted).
    pub insertions: usize,
    /// Entries dropped because their stored result no longer matched the
    /// integrity fingerprint stamped at commit time (bit rot, corrupted
    /// storage, or an injected `cache_commit` fault).
    pub corrupt_dropped: usize,
}

impl CacheStats {
    /// Hit fraction over all exact lookups (0.0 when none were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One cached block synthesis.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// `(m, input_accuracy)` reuse key — the coordinate of the near-hit
    /// distance metric.
    pub key: (u32, u32),
    /// Exact requirements the block was synthesized for.
    pub req: OtaRequirements,
    /// The synthesis result.
    pub result: SynthResult,
    /// Provenance fingerprint: hash chain over the exact requirement bits,
    /// config fingerprint and warm-start ancestry that produced `result`.
    pub provenance: u64,
    /// Fingerprint of the run configuration (process, budget/seed,
    /// evaluator options) the result was computed under. Every reuse tier
    /// filters on it: results from a different config never alias, even
    /// under [`CachePolicy::Aggressive`].
    pub config: u64,
}

/// Most entries kept per `(template, normalized spec)` bucket: distinct
/// provenance chains for the same spec (reached from different resolutions)
/// coexist, bounded so the cache cannot grow without limit.
const BUCKET_CAP: usize = 4;

/// Content fingerprint of a stored synthesis result — the integrity stamp
/// verified on every lookup so a corrupted entry is dropped instead of
/// poisoning a provenance-exact replay.
fn result_integrity(r: &SynthResult) -> u64 {
    let mut fp = Fingerprint::new();
    for &x in &r.best_x {
        fp = fp.add_f64_exact(x);
    }
    for &u in &r.best_u {
        fp = fp.add_f64_exact(u);
    }
    fp.add_f64_exact(r.best_cost)
        .add_u64(u64::from(r.feasible))
        .add_u64(r.evaluations as u64)
        .finish()
}

/// A cache entry plus the integrity stamp computed when it was committed.
#[derive(Debug, Clone)]
struct StoredEntry {
    entry: CacheEntry,
    integrity: u64,
}

/// Persistent block store keyed by `(template, normalized spec)`; see the
/// module docs for the reuse tiers and policies.
#[derive(Debug, Default)]
pub struct BlockCache {
    policy: CachePolicy,
    /// `(template tag, normalized spec fingerprint)` → entries, newest
    /// first. `BTreeMap` so every scan order is deterministic.
    buckets: BTreeMap<(u8, u64), Vec<StoredEntry>>,
    stats: CacheStats,
}

/// The paper's block-distance metric: resolution differences dominate
/// (16 ×), accuracy differences break ties — the same metric the in-set
/// warm-start planner uses, so cached and planned sources compete fairly.
#[must_use]
pub fn key_distance(a: (u32, u32), b: (u32, u32)) -> i64 {
    (i64::from(a.0) - i64::from(b.0)).abs() * 16 + (i64::from(a.1) - i64::from(b.1)).abs()
}

impl BlockCache {
    /// An empty cache with the given policy.
    #[must_use]
    pub fn new(policy: CachePolicy) -> Self {
        BlockCache {
            policy,
            ..BlockCache::default()
        }
    }

    /// The reuse policy.
    #[must_use]
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Number of stored entries across all buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops all entries (statistics are kept).
    pub fn clear(&mut self) {
        self.buckets.clear();
    }

    /// Exact lookup for a block about to be planned. `config` is the run's
    /// configuration fingerprint — entries computed under a different
    /// process/budget/evaluator setup never match, under either policy.
    /// `provenance` is the fingerprint the current plan computes for the
    /// block; under [`CachePolicy::Reproducible`] a hit must match it (and
    /// the exact requirement bits), under [`CachePolicy::Aggressive`] the
    /// newest same-spec same-config entry wins.
    pub fn lookup(
        &mut self,
        template: TemplateKind,
        spec_fp: u64,
        req: &OtaRequirements,
        provenance: u64,
        config: u64,
    ) -> Option<CacheEntry> {
        self.stats.lookups += 1;
        let bucket = self.buckets.get_mut(&(template_tag(template), spec_fp))?;
        // Integrity sweep: entries whose stored result drifted from the
        // stamp taken at commit time are dropped, never served.
        let before = bucket.len();
        bucket.retain(|s| s.integrity == result_integrity(&s.entry.result));
        self.stats.corrupt_dropped += before - bucket.len();
        let found = match self.policy {
            CachePolicy::Reproducible => bucket.iter().find(|s| {
                s.entry.config == config && s.entry.provenance == provenance && s.entry.req == *req
            }),
            CachePolicy::Aggressive => bucket.iter().find(|s| s.entry.config == config),
        };
        let hit = found.map(|s| s.entry.clone());
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// Nearest same-template same-config entry to `key` in the block
    /// metric — the warm-start seed for a miss. `better_than` (the
    /// distance of the planner's in-set warm source, if any) bounds the
    /// search: only an entry **strictly** closer is returned, so ties keep
    /// the legacy in-set behaviour. Ties between entries resolve to the
    /// earliest in deterministic bucket order. Only consulted (and
    /// counted) under [`CachePolicy::Aggressive`].
    pub fn nearest(
        &mut self,
        template: TemplateKind,
        key: (u32, u32),
        better_than: Option<i64>,
        config: u64,
    ) -> Option<CacheEntry> {
        if self.policy != CachePolicy::Aggressive {
            return None;
        }
        let seed = self
            .nearest_scored(template, key, better_than, config)
            .map(|(_, _, e)| e);
        if seed.is_some() {
            self.stats.near_seeds += 1;
        }
        seed
    }

    /// The policy-free core of [`BlockCache::nearest`]: sweeps integrity,
    /// then returns the best entry with its `(distance, spec_fp)` score.
    /// Scan order is ascending `(template, spec_fp)` with strict `<`, so
    /// the winner is the minimum under `(distance, spec_fp, bucket index)`
    /// — the ordering [`SharedCache`] merges shard-local winners by to stay
    /// shard-count-invariant. Does not count `near_seeds` (callers own the
    /// accounting).
    fn nearest_scored(
        &mut self,
        template: TemplateKind,
        key: (u32, u32),
        better_than: Option<i64>,
        config: u64,
    ) -> Option<(i64, u64, CacheEntry)> {
        let tag = template_tag(template);
        // Integrity sweep over every bucket the scan would touch.
        for ((t, _), bucket) in self.buckets.iter_mut() {
            if *t != tag {
                continue;
            }
            let before = bucket.len();
            bucket.retain(|s| s.integrity == result_integrity(&s.entry.result));
            self.stats.corrupt_dropped += before - bucket.len();
        }
        let mut best: Option<(u64, &CacheEntry)> = None;
        let mut best_dist = better_than.unwrap_or(i64::MAX);
        for ((t, fp), bucket) in &self.buckets {
            if *t != tag {
                continue;
            }
            for e in bucket
                .iter()
                .map(|s| &s.entry)
                .filter(|e| e.config == config)
            {
                let d = key_distance(e.key, key);
                if d < best_dist {
                    best = Some((*fp, e));
                    best_dist = d;
                }
            }
        }
        best.map(|(fp, e)| (best_dist, fp, e.clone()))
    }

    /// Stores a synthesized block. Re-inserting an existing provenance is a
    /// no-op; buckets keep only the newest few provenance chains
    /// (`BUCKET_CAP`). The entry is stamped with an integrity fingerprint
    /// of its result, verified on every later lookup.
    pub fn insert(&mut self, template: TemplateKind, spec_fp: u64, entry: CacheEntry) {
        let bucket = self
            .buckets
            .entry((template_tag(template), spec_fp))
            .or_default();
        if bucket
            .iter()
            .any(|s| s.entry.provenance == entry.provenance)
        {
            return;
        }
        // Stamp from the clean result; an injected commit-time corruption
        // mutates the *stored* copy afterwards, so the stamp catches it.
        let integrity = result_integrity(&entry.result);
        #[allow(unused_mut)]
        let mut stored = StoredEntry { entry, integrity };
        #[cfg(feature = "faults")]
        if let Some(action) = adc_numerics::faults::check(adc_numerics::faults::SITE_CACHE_COMMIT) {
            match action {
                adc_numerics::faults::FaultAction::Corrupt => {
                    stored.entry.result.best_cost += 1.0;
                }
                adc_numerics::faults::FaultAction::Panic => {
                    panic!("injected fault: cache_commit panic")
                }
                _ => {}
            }
        }
        bucket.insert(0, stored);
        bucket.truncate(BUCKET_CAP);
        self.stats.insertions += 1;
    }

    /// Appends every stored entry (with its commit-time integrity stamp)
    /// to `out` — the snapshot export surface. Emission order is the
    /// deterministic bucket order: ascending `(template, spec_fp)`, then
    /// newest-first within a bucket.
    fn export_into(&self, out: &mut Vec<SnapshotEntry>) {
        for ((_, fp), bucket) in &self.buckets {
            for s in bucket {
                out.push(SnapshotEntry {
                    spec_fp: *fp,
                    entry: s.entry.clone(),
                    integrity: s.integrity,
                });
            }
        }
    }

    /// Restores one snapshot entry, re-verifying the persisted integrity
    /// stamp against the (re-computed) content fingerprint of the loaded
    /// result: an entry corrupted on disk — or by an injected
    /// `cache_commit` fault on the load path — is dropped and counted in
    /// [`CacheStats::corrupt_dropped`], never stored. Entries are appended
    /// in call order, so restoring a snapshot in export order rebuilds the
    /// original newest-first buckets. Returns whether the entry was kept.
    fn restore(&mut self, e: SnapshotEntry) -> bool {
        #[allow(unused_mut)]
        let mut e = e;
        #[cfg(feature = "faults")]
        if let Some(adc_numerics::faults::FaultAction::Corrupt) =
            adc_numerics::faults::check(adc_numerics::faults::SITE_CACHE_COMMIT)
        {
            e.entry.result.best_cost += 1.0;
        }
        if result_integrity(&e.entry.result) != e.integrity {
            self.stats.corrupt_dropped += 1;
            return false;
        }
        let bucket = self
            .buckets
            .entry((template_tag(e.entry.req.template), e.spec_fp))
            .or_default();
        if bucket.len() >= BUCKET_CAP
            || bucket
                .iter()
                .any(|s| s.entry.provenance == e.entry.provenance)
        {
            return false;
        }
        bucket.push(StoredEntry {
            entry: e.entry,
            integrity: e.integrity,
        });
        true
    }
}

/// One exported cache entry: the [`CacheEntry`] plus its normalized-spec
/// bucket fingerprint and commit-time integrity stamp — everything the
/// snapshot format persists per entry. The bucket template rides inside
/// `entry.req.template`.
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// `(stage ⊕ normalized requirement)` bucket fingerprint.
    pub spec_fp: u64,
    /// The cached synthesis.
    pub entry: CacheEntry,
    /// Content fingerprint stamped at commit time, re-verified on restore.
    pub integrity: u64,
}

/// The cache consultation surface [`crate::flow::run_flow`] plans and
/// commits through — implemented by an exclusively borrowed [`BlockCache`]
/// and by a [`SharedCache`] reference that locks one shard per call.
pub(crate) trait FlowCache {
    /// Exact lookup (see [`BlockCache::lookup`]).
    fn lookup(
        &mut self,
        template: TemplateKind,
        spec_fp: u64,
        req: &OtaRequirements,
        provenance: u64,
        config: u64,
    ) -> Option<CacheEntry>;
    /// Near-hit seed (see [`BlockCache::nearest`]).
    fn nearest(
        &mut self,
        template: TemplateKind,
        key: (u32, u32),
        better_than: Option<i64>,
        config: u64,
    ) -> Option<CacheEntry>;
    /// Commit (see [`BlockCache::insert`]).
    fn insert(&mut self, template: TemplateKind, spec_fp: u64, entry: CacheEntry);
}

impl FlowCache for BlockCache {
    fn lookup(
        &mut self,
        template: TemplateKind,
        spec_fp: u64,
        req: &OtaRequirements,
        provenance: u64,
        config: u64,
    ) -> Option<CacheEntry> {
        BlockCache::lookup(self, template, spec_fp, req, provenance, config)
    }
    fn nearest(
        &mut self,
        template: TemplateKind,
        key: (u32, u32),
        better_than: Option<i64>,
        config: u64,
    ) -> Option<CacheEntry> {
        BlockCache::nearest(self, template, key, better_than, config)
    }
    fn insert(&mut self, template: TemplateKind, spec_fp: u64, entry: CacheEntry) {
        BlockCache::insert(self, template, spec_fp, entry);
    }
}

impl FlowCache for &SharedCache {
    fn lookup(
        &mut self,
        template: TemplateKind,
        spec_fp: u64,
        req: &OtaRequirements,
        provenance: u64,
        config: u64,
    ) -> Option<CacheEntry> {
        SharedCache::lookup(self, template, spec_fp, req, provenance, config)
    }
    fn nearest(
        &mut self,
        template: TemplateKind,
        key: (u32, u32),
        better_than: Option<i64>,
        config: u64,
    ) -> Option<CacheEntry> {
        SharedCache::nearest(self, template, key, better_than, config)
    }
    fn insert(&mut self, template: TemplateKind, spec_fp: u64, entry: CacheEntry) {
        SharedCache::insert(self, template, spec_fp, entry);
    }
}

/// Default shard count of a [`SharedCache`] — enough that a worker pool
/// sized for commodity cores rarely collides on one lock, small enough
/// that merged-stats scans stay trivial.
pub const DEFAULT_SHARDS: usize = 8;

/// A [`BlockCache`] split across N independently locked shards — the
/// resident flow server's cache substrate, replacing the single
/// `Mutex<BlockCache>` whose one lock every worker funnelled through.
///
/// A block's shard is chosen by its existing normalized-spec
/// [`Fingerprint`] (`spec_fp % shards`), so placement is a deterministic
/// function of the block alone: thread count, submission order and wall
/// clock never move an entry between shards. Lookup and commit lock
/// exactly one shard; only the aggressive-policy near-hit scan (never
/// consulted by the reproducible serving path) visits all shards, merging
/// shard-local winners under the same `(distance, spec_fp, bucket index)`
/// order a single cache scans in — so `nearest` answers are
/// shard-count-invariant too. [`SharedCache::stats`] merges per-shard
/// counters in fixed shard order (a commutative sum, deterministic for
/// any interleaving).
#[derive(Debug)]
pub struct SharedCache {
    policy: CachePolicy,
    shards: Vec<Mutex<BlockCache>>,
}

impl SharedCache {
    /// An empty sharded cache. `shards` is clamped to at least 1.
    #[must_use]
    pub fn new(policy: CachePolicy, shards: usize) -> Self {
        SharedCache {
            policy,
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(BlockCache::new(policy)))
                .collect(),
        }
    }

    /// [`SharedCache::new`] with [`DEFAULT_SHARDS`].
    #[must_use]
    pub fn with_default_shards(policy: CachePolicy) -> Self {
        SharedCache::new(policy, DEFAULT_SHARDS)
    }

    /// The reuse policy (uniform across shards).
    #[must_use]
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `spec_fp`. Deterministic in the fingerprint and
    /// the shard count alone.
    fn shard(&self, spec_fp: u64) -> std::sync::MutexGuard<'_, BlockCache> {
        let idx = (spec_fp % self.shards.len() as u64) as usize;
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Total stored entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether no shard holds an entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merged cumulative statistics: the field-wise sum over shards in
    /// fixed shard order.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(PoisonError::into_inner).stats();
            total.lookups += s.lookups;
            total.hits += s.hits;
            total.near_seeds += s.near_seeds;
            total.insertions += s.insertions;
            total.corrupt_dropped += s.corrupt_dropped;
        }
        total
    }

    /// Drops all entries in every shard (statistics are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }

    /// [`BlockCache::lookup`] against the owning shard (one lock).
    pub fn lookup(
        &self,
        template: TemplateKind,
        spec_fp: u64,
        req: &OtaRequirements,
        provenance: u64,
        config: u64,
    ) -> Option<CacheEntry> {
        self.shard(spec_fp)
            .lookup(template, spec_fp, req, provenance, config)
    }

    /// [`BlockCache::nearest`] across all shards: each shard reports its
    /// local winner (already minimal under `(distance, spec_fp, bucket
    /// index)`), and the global winner is the minimum under `(distance,
    /// spec_fp)` — exactly the order a single unsharded scan encounters
    /// entries in, so the answer does not depend on the shard count. The
    /// `near_seeds` count lands in the winning entry's shard.
    pub fn nearest(
        &self,
        template: TemplateKind,
        key: (u32, u32),
        better_than: Option<i64>,
        config: u64,
    ) -> Option<CacheEntry> {
        if self.policy != CachePolicy::Aggressive {
            return None;
        }
        let mut best: Option<(i64, u64, CacheEntry)> = None;
        for shard in &self.shards {
            let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((d, fp, e)) = guard.nearest_scored(template, key, better_than, config) {
                let wins = match &best {
                    None => true,
                    Some((bd, bfp, _)) => (d, fp) < (*bd, *bfp),
                };
                if wins {
                    best = Some((d, fp, e));
                }
            }
        }
        best.map(|(_, fp, e)| {
            self.shard(fp).stats.near_seeds += 1;
            e
        })
    }

    /// [`BlockCache::insert`] against the owning shard (one lock).
    pub fn insert(&self, template: TemplateKind, spec_fp: u64, entry: CacheEntry) {
        self.shard(spec_fp).insert(template, spec_fp, entry);
    }

    /// Every stored entry across all shards in a **shard-count-invariant**
    /// order — sorted by `(template, spec_fp, bucket index)` — so the
    /// rendered snapshot of a given cache content is byte-identical
    /// whether it was accumulated under 1 shard or 64.
    #[must_use]
    pub fn export_entries(&self) -> Vec<SnapshotEntry> {
        let mut all: Vec<SnapshotEntry> = Vec::new();
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .export_into(&mut all);
        }
        // Bucket order within a shard is already deterministic; a stable
        // sort on the bucket key makes the concatenation shard-invariant
        // while preserving each bucket's newest-first entry order.
        all.sort_by_key(|e| (template_tag(e.entry.req.template), e.spec_fp));
        all
    }

    /// Restores one exported entry into its shard (integrity re-verified;
    /// corrupt entries dropped and counted — see [`BlockCache`] restore
    /// semantics). Returns whether the entry was kept.
    pub fn restore_entry(&self, entry: SnapshotEntry) -> bool {
        self.shard(entry.spec_fp).restore(entry)
    }

    /// Counts `n` entries that never made it to any shard (unparseable or
    /// version-rejected snapshot records) as corrupt-dropped, so the
    /// merged statistics account for every entry the snapshot claimed.
    pub fn note_corrupt_dropped(&self, n: usize) {
        self.shards[0]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
            .corrupt_dropped += n;
    }
}

#[cfg(test)]
impl BlockCache {
    /// Flips a bit in every stored result — simulates storage corruption
    /// without going through the fault-injection registry.
    fn corrupt_all_for_test(&mut self) {
        for bucket in self.buckets.values_mut() {
            for s in bucket.iter_mut() {
                s.entry.result.best_cost += 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(a0: f64) -> OtaRequirements {
        OtaRequirements {
            a0_min: a0,
            unity_min: 1e8,
            pm_min: 60.0,
            c_load: 1e-12,
            template: TemplateKind::Telescopic,
        }
    }

    fn result(cost: f64) -> SynthResult {
        SynthResult {
            best_x: vec![cost],
            best_u: vec![0.5],
            best_perf: Default::default(),
            best_cost: cost,
            feasible: true,
            evaluations: 7,
        }
    }

    const CFG: u64 = 77;

    fn entry(key: (u32, u32), provenance: u64) -> CacheEntry {
        CacheEntry {
            key,
            req: req(100.0),
            result: result(provenance as f64),
            provenance,
            config: CFG,
        }
    }

    #[test]
    fn reproducible_requires_provenance_and_exact_req() {
        let mut c = BlockCache::new(CachePolicy::Reproducible);
        c.insert(TemplateKind::Telescopic, 42, entry((2, 8), 7));
        assert!(c
            .lookup(TemplateKind::Telescopic, 42, &req(100.0), 7, CFG)
            .is_some());
        assert!(
            c.lookup(TemplateKind::Telescopic, 42, &req(100.0), 8, CFG)
                .is_none(),
            "different provenance must miss"
        );
        assert!(
            c.lookup(TemplateKind::Telescopic, 42, &req(101.0), 7, CFG)
                .is_none(),
            "different exact req must miss"
        );
        assert!(
            c.lookup(TemplateKind::TwoStage, 42, &req(100.0), 7, CFG)
                .is_none(),
            "different template must miss"
        );
        assert!(
            c.lookup(TemplateKind::Telescopic, 42, &req(100.0), 7, CFG + 1)
                .is_none(),
            "different config must miss"
        );
        assert_eq!(c.stats().lookups, 5);
        assert_eq!(c.stats().hits, 1);
        assert!((c.stats().hit_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn aggressive_ignores_provenance_and_seeds_near_hits() {
        let mut c = BlockCache::new(CachePolicy::Aggressive);
        c.insert(TemplateKind::Telescopic, 42, entry((2, 8), 7));
        assert!(c
            .lookup(TemplateKind::Telescopic, 42, &req(100.0), 999, CFG)
            .is_some());
        assert!(
            c.lookup(TemplateKind::Telescopic, 42, &req(100.0), 999, CFG + 1)
                .is_none(),
            "aggressive hits still respect the config fingerprint"
        );
        // Near hit: closest key wins; repro policy would return None.
        c.insert(TemplateKind::Telescopic, 43, entry((3, 9), 8));
        let seed = c
            .nearest(TemplateKind::Telescopic, (3, 10), None, CFG)
            .unwrap();
        assert_eq!(seed.key, (3, 9));
        assert!(c
            .nearest(TemplateKind::TwoStage, (3, 10), None, CFG)
            .is_none());
        assert!(
            c.nearest(TemplateKind::Telescopic, (3, 10), None, CFG + 1)
                .is_none(),
            "seeds never cross configs"
        );
        // Distance bound: (3, 9) is at distance 1 from (3, 10) — a planned
        // source at distance 1 keeps the tie, at distance 2 loses.
        assert!(c
            .nearest(TemplateKind::Telescopic, (3, 10), Some(1), CFG)
            .is_none());
        assert!(c
            .nearest(TemplateKind::Telescopic, (3, 10), Some(2), CFG)
            .is_some());
        assert_eq!(c.stats().near_seeds, 2);

        let mut repro = BlockCache::new(CachePolicy::Reproducible);
        repro.insert(TemplateKind::Telescopic, 42, entry((2, 8), 7));
        assert!(repro
            .nearest(TemplateKind::Telescopic, (2, 9), None, CFG)
            .is_none());
    }

    #[test]
    fn buckets_dedup_and_cap() {
        let mut c = BlockCache::new(CachePolicy::Aggressive);
        for p in 0..10 {
            c.insert(TemplateKind::Telescopic, 42, entry((2, 8), p));
            c.insert(TemplateKind::Telescopic, 42, entry((2, 8), p)); // dup
        }
        assert_eq!(c.len(), BUCKET_CAP);
        assert_eq!(c.stats().insertions, 10);
        // Newest provenance wins the aggressive lookup.
        let hit = c
            .lookup(TemplateKind::Telescopic, 42, &req(100.0), 0, CFG)
            .unwrap();
        assert_eq!(hit.provenance, 9);
    }

    #[test]
    fn corrupted_entries_are_dropped_not_served() {
        let mut c = BlockCache::new(CachePolicy::Aggressive);
        c.insert(TemplateKind::Telescopic, 42, entry((2, 8), 7));
        c.corrupt_all_for_test();
        assert!(
            c.lookup(TemplateKind::Telescopic, 42, &req(100.0), 7, CFG)
                .is_none(),
            "corrupted entry must not be served as a hit"
        );
        assert_eq!(c.stats().corrupt_dropped, 1);
        assert_eq!(c.len(), 0, "corrupted entry is evicted");
        // Same through the near-hit path.
        c.insert(TemplateKind::Telescopic, 43, entry((3, 9), 8));
        c.corrupt_all_for_test();
        assert!(c
            .nearest(TemplateKind::Telescopic, (3, 10), None, CFG)
            .is_none());
        assert_eq!(c.stats().corrupt_dropped, 2);
        // A clean entry still round-trips.
        c.insert(TemplateKind::Telescopic, 44, entry((4, 10), 9));
        assert!(c
            .lookup(TemplateKind::Telescopic, 44, &req(100.0), 9, CFG)
            .is_some());
    }

    #[test]
    fn distance_metric_matches_planner() {
        assert_eq!(key_distance((4, 13), (4, 10)), 3);
        assert_eq!(key_distance((2, 8), (3, 8)), 16);
        assert_eq!(key_distance((2, 8), (4, 10)), 34);
    }
}
