//! Derivation of the paper's Fig. 3: decision rules for the optimum
//! candidate enumeration as a function of converter resolution.
//!
//! Sweeping the optimizer over resolutions produces the bands the paper
//! draws: low-resolution converters (≤ 8 bits) stay all-1.5-bit
//! (`mᵢ ∈ {2}`), medium ones (9–10 bits) admit 3-bit front stages
//! (`mᵢ ∈ {2,3}`), and 11+ bits admit the full `mᵢ ∈ {2,3,4}` set with a
//! 4-bit first stage; the last front-end stage is always 2 bits.

use crate::optimize::optimize_topology;
use adc_mdac::power::PowerModelParams;
use adc_mdac::specs::AdcSpec;

/// One resolution's derived optimum and rule attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRow {
    /// Converter resolution K.
    pub resolution: u32,
    /// Optimum configuration label (`"-"` when no front end is needed).
    pub optimum: String,
    /// Largest stage resolution used by the optimum.
    pub max_stage_bits: u32,
    /// Distinct stage resolutions used.
    pub used_bits: Vec<u32>,
    /// Last front-end stage resolution (2 when a front end exists).
    pub last_stage_bits: u32,
}

/// Fig. 3 as data: one row per resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTable {
    /// Rows in ascending resolution.
    pub rows: Vec<RuleRow>,
}

impl RuleTable {
    /// Row for a resolution.
    pub fn row(&self, resolution: u32) -> Option<&RuleRow> {
        self.rows.iter().find(|r| r.resolution == resolution)
    }

    /// The resolution band (inclusive) whose optima use `max_bits` as the
    /// largest stage resolution.
    pub fn band_for_max_bits(&self, max_bits: u32) -> Option<(u32, u32)> {
        let ks: Vec<u32> = self
            .rows
            .iter()
            .filter(|r| r.max_stage_bits == max_bits)
            .map(|r| r.resolution)
            .collect();
        Some((*ks.iter().min()?, *ks.iter().max()?))
    }
}

/// Sweeps `resolutions` and derives the optimum rules.
pub fn derive_rules(
    resolutions: std::ops::RangeInclusive<u32>,
    params: &PowerModelParams,
) -> RuleTable {
    let rows = resolutions
        .map(|k| {
            let spec = AdcSpec::date05(k);
            let report = optimize_topology(&spec, params);
            if report.rows.is_empty() {
                // ≤ backend resolution: all-1.5-bit converter, mᵢ ∈ {2}.
                return RuleRow {
                    resolution: k,
                    optimum: "-".to_string(),
                    max_stage_bits: 2,
                    used_bits: vec![2],
                    last_stage_bits: 2,
                };
            }
            let best = report.best();
            let mut used: Vec<u32> = best.candidate.front_bits().to_vec();
            used.sort_unstable();
            used.dedup();
            RuleRow {
                resolution: k,
                optimum: best.candidate.to_string(),
                max_stage_bits: best.candidate.first_stage_bits(),
                used_bits: used,
                last_stage_bits: best.candidate.last_stage_bits(),
            }
        })
        .collect();
    RuleTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RuleTable {
        derive_rules(8..=13, &PowerModelParams::calibrated())
    }

    /// The paper's three bands: ≤8 all-2, 9–10 admit 3, ≥11 admit 4.
    #[test]
    fn bands_match_figure_3() {
        let t = table();
        assert_eq!(t.row(8).unwrap().max_stage_bits, 2);
        for k in 9..=10 {
            assert_eq!(t.row(k).unwrap().max_stage_bits, 3, "K = {k}");
        }
        for k in 11..=13 {
            assert_eq!(t.row(k).unwrap().max_stage_bits, 4, "K = {k}");
        }
    }

    #[test]
    fn last_stage_two_bits_for_10_to_13() {
        // The paper's claim is scoped to 10–13 bits; at K = 9 the optimum
        // is a single 3-bit stage (no 2-bit stage exists).
        for r in &table().rows {
            if r.resolution >= 10 {
                assert_eq!(r.last_stage_bits, 2, "K = {}", r.resolution);
            }
        }
    }

    #[test]
    fn band_extraction() {
        let t = table();
        assert_eq!(t.band_for_max_bits(3), Some((9, 10)));
        assert_eq!(t.band_for_max_bits(4), Some((11, 13)));
        assert_eq!(t.band_for_max_bits(5), None);
    }

    #[test]
    fn used_bits_subset_of_allowed() {
        for r in &table().rows {
            assert!(r.used_bits.iter().all(|&m| (2..=4).contains(&m)));
        }
    }
}
