//! Topology optimization: evaluate every enumerated candidate's stage and
//! total power (the data behind Fig. 1 and Fig. 2) and pick the minimum.

use crate::enumerate::{enumerate_candidates, Candidate};
use crate::executor::{run_parallel, ExecutorOptions};
use adc_mdac::power::{design_chain, PowerModelParams, StageDesign};
use adc_mdac::specs::AdcSpec;

/// Power evaluation of one candidate.
#[derive(Debug, Clone)]
pub struct CandidateRow {
    /// The configuration.
    pub candidate: Candidate,
    /// Full per-stage analytic designs.
    pub stages: Vec<StageDesign>,
    /// Per-stage total power, W (Fig. 1 series).
    pub stage_power: Vec<f64>,
    /// Front-end total power, W (Fig. 2 bar).
    pub total_power: f64,
}

/// Ranked evaluation of every candidate for one ADC spec.
#[derive(Debug, Clone)]
pub struct TopologyReport {
    /// The ADC specification evaluated.
    pub spec: AdcSpec,
    /// Rows sorted ascending by total power.
    pub rows: Vec<CandidateRow>,
}

impl TopologyReport {
    /// The minimum-power candidate.
    ///
    /// # Panics
    /// Panics if the report is empty (resolution ≤ backend bits).
    pub fn best(&self) -> &CandidateRow {
        self.rows.first().expect("no candidates")
    }

    /// Row for a specific configuration, if enumerated.
    pub fn row(&self, front_bits: &[u32]) -> Option<&CandidateRow> {
        self.rows
            .iter()
            .find(|r| r.candidate.front_bits() == front_bits)
    }
}

/// Flattened summary row (plain strings and numbers, ready for the
/// `report` module's text/CSV emitters).
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// Configuration label, e.g. `"4-3-2"`.
    pub config: String,
    /// Per-stage power, mW.
    pub stage_power_mw: Vec<f64>,
    /// Total power, mW.
    pub total_power_mw: f64,
}

fn evaluate_candidate(
    spec: &AdcSpec,
    params: &PowerModelParams,
    candidate: Candidate,
) -> CandidateRow {
    let stages = design_chain(spec, candidate.front_bits(), params);
    let stage_power: Vec<f64> = stages.iter().map(|d| d.power_total).collect();
    let total_power = stage_power.iter().sum();
    CandidateRow {
        candidate,
        stages,
        stage_power,
        total_power,
    }
}

/// Evaluates all candidates of `spec` with the analytic designer model and
/// ranks them by total front-end power.
pub fn optimize_topology(spec: &AdcSpec, params: &PowerModelParams) -> TopologyReport {
    let mut rows: Vec<CandidateRow> = enumerate_candidates(spec.resolution, 7)
        .into_iter()
        .map(|candidate| evaluate_candidate(spec, params, candidate))
        .collect();
    rows.sort_by(|a, b| {
        a.total_power
            .partial_cmp(&b.total_power)
            .expect("finite powers")
    });
    TopologyReport {
        spec: spec.clone(),
        rows,
    }
}

/// Parallel variant of [`optimize_topology`]: candidates are independent,
/// so they evaluate as a dependency-free DAG on the block executor
/// (useful when the designer model is swapped for an expensive
/// circuit-backed evaluation).
pub fn optimize_topology_parallel(spec: &AdcSpec, params: &PowerModelParams) -> TopologyReport {
    let candidates = enumerate_candidates(spec.resolution, 7);
    let mut rows: Vec<CandidateRow> =
        run_parallel(candidates.len(), &ExecutorOptions::default(), |i: usize| {
            evaluate_candidate(spec, params, candidates[i].clone())
        });
    rows.sort_by(|a, b| {
        a.total_power
            .partial_cmp(&b.total_power)
            .expect("finite powers")
    });
    TopologyReport {
        spec: spec.clone(),
        rows,
    }
}

/// Flattened summary of a report.
pub fn summarize(report: &TopologyReport) -> Vec<SummaryRow> {
    report
        .rows
        .iter()
        .map(|r| SummaryRow {
            config: r.candidate.to_string(),
            stage_power_mw: r.stage_power.iter().map(|p| p * 1e3).collect(),
            total_power_mw: r.total_power * 1e3,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PowerModelParams {
        PowerModelParams::calibrated()
    }

    /// The paper's headline result: 4-3-2 minimizes 13-bit power.
    #[test]
    fn thirteen_bit_optimum_is_432() {
        let r = optimize_topology(&AdcSpec::date05(13), &params());
        assert_eq!(r.best().candidate.to_string(), "4-3-2");
        assert_eq!(r.rows.len(), 7);
    }

    /// Fig. 2's optima across resolutions: 3-2, 4-2, 4-2-2, 4-3-2.
    #[test]
    fn optima_across_resolutions_match_paper() {
        for (k, want) in [(10, "3-2"), (11, "4-2"), (12, "4-2-2"), (13, "4-3-2")] {
            let r = optimize_topology(&AdcSpec::date05(k), &params());
            assert_eq!(r.best().candidate.to_string(), want, "K = {k}");
        }
    }

    /// "2-bit at the last stage is the common optimum" (paper §4).
    #[test]
    fn optima_end_with_two_bit_stage() {
        for k in 10..=13 {
            let r = optimize_topology(&AdcSpec::date05(k), &params());
            assert_eq!(r.best().candidate.last_stage_bits(), 2, "K = {k}");
        }
    }

    /// Fig. 1: first-stage power is mostly independent of m₁ (≤ ~25 %
    /// spread), while the all-1.5-bit candidate is the most power-hungry.
    #[test]
    fn first_stage_power_mostly_independent_of_resolution() {
        let r = optimize_topology(&AdcSpec::date05(13), &params());
        let p1 = |bits: &[u32]| r.row(bits).unwrap().stage_power[0];
        let powers = [
            p1(&[2, 2, 2, 2, 2, 2]),
            p1(&[3, 3, 3]),
            p1(&[4, 3, 2]),
            p1(&[4, 4]),
        ];
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.30,
            "stage-1 spread {:.3} ({powers:?})",
            max / min
        );
        // And the 2-2-… configuration costs the most in total.
        assert_eq!(r.rows.last().unwrap().candidate.to_string(), "2-2-2-2-2-2");
    }

    /// Stage power decays monotonically along every candidate (Fig. 1's
    /// downward staircase).
    #[test]
    fn stage_power_decreases_along_pipeline() {
        let r = optimize_topology(&AdcSpec::date05(13), &params());
        for row in &r.rows {
            for w in row.stage_power.windows(2) {
                assert!(w[1] < w[0], "{}: {:?}", row.candidate, row.stage_power);
            }
        }
    }

    #[test]
    fn total_power_grows_with_resolution() {
        let p = params();
        let mut last = 0.0;
        for k in 10..=13 {
            let r = optimize_topology(&AdcSpec::date05(k), &p);
            assert!(r.best().total_power > last);
            last = r.best().total_power;
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = params();
        for k in [10u32, 13] {
            let spec = AdcSpec::date05(k);
            let a = optimize_topology(&spec, &p);
            let b = optimize_topology_parallel(&spec, &p);
            assert_eq!(a.rows.len(), b.rows.len());
            for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
                assert_eq!(ra.candidate, rb.candidate);
                assert_eq!(ra.total_power, rb.total_power);
            }
        }
    }

    #[test]
    fn summary_rows_serialize() {
        let r = optimize_topology(&AdcSpec::date05(10), &params());
        let s = summarize(&r);
        assert_eq!(s.len(), 3);
        assert!(s[0].total_power_mw <= s[1].total_power_mw);
        assert!(!s[0].config.is_empty());
        assert_eq!(s[0].stage_power_mw.len(), r.rows[0].stages.len());
    }
}
