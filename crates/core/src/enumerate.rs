//! Candidate enumeration (§2 of the paper).
//!
//! A K-bit pipelined converter with one redundancy bit per stage satisfies
//! `Σ (mᵢ − 1) = K`; the enumeration explores the **front-end** stages that
//! resolve everything above the cheap 1.5-bit/stage backend (the paper
//! keeps "the first few stages such that the output resolution exceeds
//! 7 bits"). Constraints:
//!
//! * `mᵢ ≤ 4` — closed-loop bandwidth concerns (feedback factor collapses);
//! * `mᵢ ≥ mᵢ₊₁` — non-increasing resolution (area factor, used implicitly
//!   in the literature);
//! * `mᵢ ≥ 2` — one redundancy bit must remain.
//!
//! For K = 13 (backend 7) this yields exactly **seven** candidates —
//! 4-4, 4-3-2, 4-2-2-2, 3-3-3, 3-3-2-2, 3-2-2-2-2, 2-2-2-2-2-2.

use std::fmt;

/// One enumerated front-end configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Candidate {
    front_bits: Vec<u32>,
}

impl Candidate {
    /// Creates a candidate from raw per-stage resolutions.
    ///
    /// # Panics
    /// Panics if the constraint set (2 ≤ mᵢ ≤ 4, non-increasing) is
    /// violated.
    pub fn new(front_bits: Vec<u32>) -> Self {
        assert!(!front_bits.is_empty(), "empty candidate");
        for w in front_bits.windows(2) {
            assert!(w[0] >= w[1], "stage resolutions must be non-increasing");
        }
        assert!(
            front_bits.iter().all(|&m| (2..=4).contains(&m)),
            "stage resolutions must be in 2..=4"
        );
        Candidate { front_bits }
    }

    /// Per-stage raw resolutions `mᵢ`.
    pub fn front_bits(&self) -> &[u32] {
        &self.front_bits
    }

    /// Number of front-end stages.
    pub fn stage_count(&self) -> usize {
        self.front_bits.len()
    }

    /// Effective bits resolved by the front end, `Σ(mᵢ−1)`.
    pub fn effective_bits(&self) -> u32 {
        self.front_bits.iter().map(|m| m - 1).sum()
    }

    /// First-stage resolution `m₁`.
    pub fn first_stage_bits(&self) -> u32 {
        self.front_bits[0]
    }

    /// Last front-end stage resolution.
    pub fn last_stage_bits(&self) -> u32 {
        *self.front_bits.last().expect("nonempty")
    }

    /// Total front-end comparator count `Σ(2^mᵢ − 2)`.
    pub fn comparator_count(&self) -> usize {
        self.front_bits.iter().map(|&m| (1usize << m) - 2).sum()
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.front_bits.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

/// Enumerates every front-end configuration for a `resolution`-bit ADC with
/// a `backend_bits` 1.5-bit/stage tail: all non-increasing compositions of
/// `resolution − backend_bits` effective bits with per-stage effective bits
/// in 1..=3.
///
/// Candidates are returned in descending first-stage resolution, then
/// lexicographic order. Returns an empty vector when
/// `resolution ≤ backend_bits` (no front end needed — the all-1.5-bit
/// converter).
pub fn enumerate_candidates(resolution: u32, backend_bits: u32) -> Vec<Candidate> {
    if resolution <= backend_bits {
        return Vec::new();
    }
    let total = (resolution - backend_bits) as i32;
    let mut out = Vec::new();
    let mut cur: Vec<u32> = Vec::new();
    fn rec(rem: i32, max_part: i32, cur: &mut Vec<u32>, out: &mut Vec<Candidate>) {
        if rem == 0 {
            out.push(Candidate::new(cur.iter().map(|&r| r + 1).collect()));
            return;
        }
        let hi = max_part.min(rem);
        for part in (1..=hi).rev() {
            cur.push(part as u32);
            rec(rem - part, part, cur, out);
            cur.pop();
        }
    }
    rec(total, 3, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn thirteen_bit_yields_exactly_seven() {
        let cands = enumerate_candidates(13, 7);
        assert_eq!(cands.len(), 7, "{cands:?}");
        let names: HashSet<String> = cands.iter().map(|c| c.to_string()).collect();
        for want in [
            "2-2-2-2-2-2",
            "3-2-2-2-2",
            "3-3-3",
            "4-3-2",
            "4-2-2-2",
            "3-3-2-2",
            "4-4",
        ] {
            assert!(names.contains(want), "missing {want}");
        }
    }

    #[test]
    fn counts_for_10_to_12_bits() {
        assert_eq!(enumerate_candidates(10, 7).len(), 3); // 4, 3-2, 2-2-2
        assert_eq!(enumerate_candidates(11, 7).len(), 4);
        assert_eq!(enumerate_candidates(12, 7).len(), 5);
        assert_eq!(enumerate_candidates(9, 7).len(), 2); // 3, 2-2
        assert_eq!(enumerate_candidates(8, 7).len(), 1); // single 1.5-bit stage
        assert!(enumerate_candidates(7, 7).is_empty());
    }

    #[test]
    fn all_candidates_satisfy_constraints() {
        for k in 9..=16 {
            for c in enumerate_candidates(k, 7) {
                assert_eq!(c.effective_bits(), k - 7, "{c}");
                assert!(c.front_bits().iter().all(|&m| (2..=4).contains(&m)), "{c}");
                for w in c.front_bits().windows(2) {
                    assert!(w[0] >= w[1], "{c} not non-increasing");
                }
            }
        }
    }

    #[test]
    fn enumeration_is_complete_vs_brute_force() {
        // Brute force: all sequences over {2,3,4} up to length 6.
        for k in 9..=13u32 {
            let eff = k - 7;
            let mut brute = HashSet::new();
            fn gen(cur: &mut Vec<u32>, remaining: i64, brute: &mut HashSet<Vec<u32>>) {
                if remaining == 0 && !cur.is_empty() {
                    let ok = cur.windows(2).all(|w| w[0] >= w[1]);
                    if ok {
                        brute.insert(cur.clone());
                    }
                }
                if remaining <= 0 || cur.len() >= 6 {
                    return;
                }
                for m in 2..=4u32 {
                    cur.push(m);
                    gen(cur, remaining - (m as i64 - 1), brute);
                    cur.pop();
                }
            }
            let mut cur = Vec::new();
            gen(&mut cur, eff as i64, &mut brute);
            let enumerated: HashSet<Vec<u32>> = enumerate_candidates(k, 7)
                .into_iter()
                .map(|c| c.front_bits().to_vec())
                .collect();
            assert_eq!(enumerated, brute, "K={k}");
        }
    }

    #[test]
    fn display_and_accessors() {
        let c = Candidate::new(vec![4, 3, 2]);
        assert_eq!(c.to_string(), "4-3-2");
        assert_eq!(c.stage_count(), 3);
        assert_eq!(c.effective_bits(), 6);
        assert_eq!(c.first_stage_bits(), 4);
        assert_eq!(c.last_stage_bits(), 2);
        assert_eq!(c.comparator_count(), 14 + 6 + 2);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn rejects_increasing_configs() {
        Candidate::new(vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "2..=4")]
    fn rejects_out_of_range() {
        Candidate::new(vec![5, 2]);
    }
}
