//! Circuit-level verification of ranked candidates: the flow stage that
//! builds a winning configuration's **full-pipeline chain testbench** from
//! its synthesized blocks and evaluates it end to end.
//!
//! The ranking sums per-stage power estimates; this stage closes the gap
//! the ROADMAP called out — the winner is re-checked at the circuit level
//! with real inter-stage loading (each stage's sampling array and sub-ADC
//! bank load the previous MDAC), and the chain-level gain, bandwidth,
//! settling constant and supply power are reported **next to** the
//! summed-stage estimates so a coupling-induced shortfall is visible before
//! sign-off.

use crate::enumerate::Candidate;
use crate::flow::{MdacBlock, TemplateKind};
use adc_mdac::netlist::{
    build_pipeline, MdacStageConfig, OtaSizing, PipelineOptions, PipelineTestbench,
};
use adc_mdac::opamp::{TelescopicParams, TwoStageParams};
use adc_mdac::power::{design_chain, PowerModelParams};
use adc_mdac::sizing::floor_cap;
use adc_mdac::specs::AdcSpec;
use adc_spice::linearize::SolverChoice;
use adc_spice::tran::Clock;
use adc_synth::chain::{ChainEvaluator, ChainOptions, ChainReport};
use adc_synth::hybrid::BenchSetup;
use adc_synth::tran_chain::{
    TranChainEvaluator, TranChainOptions, TranChainReport, TranChainSetup,
};

/// Options of the chain-verification stage.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Chain-evaluation options. The testbench's own `.nodeset` guesses
    /// and per-node damping **replace** whatever the supplied DC options
    /// carry — chains do not converge without them; use
    /// [`crate::verify::build_candidate_testbench`] plus a hand-built
    /// [`ChainEvaluator`] for diagnostic runs that need full DC control.
    pub chain: ChainOptions,
    /// Clocked transient sign-off options; `None` skips the dynamic leg
    /// (small-signal verification only).
    pub tran: Option<TranChainOptions>,
    /// Solver-engine override (tests/diagnostics; [`SolverChoice::Auto`]
    /// in production).
    pub solver: SolverChoice,
    /// Attach the sub-ADC comparator banks and reference ladders.
    pub with_sub_adc: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            chain: ChainOptions::default(),
            tran: Some(TranChainOptions::default()),
            solver: SolverChoice::Auto,
            with_sub_adc: true,
        }
    }
}

/// Chain-level verification record of one candidate, reported next to the
/// summed-stage estimates.
#[derive(Debug, Clone)]
pub struct ChainVerification {
    /// Configuration label, e.g. `"4-3-2"`.
    pub config: String,
    /// Converter resolution, bits.
    pub resolution: u32,
    /// The chain-level measurement.
    pub report: ChainReport,
    /// Clocked transient sign-off under real φ1/φ2 phases (when the
    /// dynamic leg ran).
    pub tran: Option<TranChainReport>,
    /// Ideal end-to-end gain `∏ 2^{mᵢ−1}`.
    pub gain_expected: f64,
    /// Sum of the synthesized blocks' OTA supply powers, W (the estimate
    /// the ranking would sign off on).
    pub power_summed: f64,
    /// Sum of the analytic model's per-stage opamp powers, W.
    pub power_analytic: f64,
}

impl ChainVerification {
    /// Relative end-to-end gain error vs the ideal `∏ G`.
    pub fn gain_error(&self) -> f64 {
        (self.report.gain - self.gain_expected).abs() / self.gain_expected
    }
}

/// Maps a candidate's stages onto their synthesized blocks and assembles
/// the chain testbench. `blocks` is a candidate-set synthesis result (for
/// this candidate or a superset, e.g. the whole enumeration's distinct
/// blocks).
///
/// Pairs each stage design of a candidate with its synthesized block.
fn stage_blocks<'a>(
    spec: &AdcSpec,
    candidate: &Candidate,
    blocks: &'a [MdacBlock],
    params: &PowerModelParams,
) -> Result<Vec<(adc_mdac::StageDesign, &'a MdacBlock)>, String> {
    design_chain(spec, candidate.front_bits(), params)
        .into_iter()
        .map(|design| {
            let key = design.spec.reuse_key();
            blocks
                .iter()
                .find(|b| b.key == key)
                .map(|b| (design, b))
                .ok_or_else(|| format!("no synthesized block for stage {key:?}"))
        })
        .collect()
}

/// # Errors
/// A human-readable reason when a stage has no matching block or the
/// netlist assembly fails.
pub fn build_candidate_testbench(
    spec: &AdcSpec,
    candidate: &Candidate,
    blocks: &[MdacBlock],
    params: &PowerModelParams,
    opts: &VerifyOptions,
) -> Result<PipelineTestbench, String> {
    let pairs = stage_blocks(spec, candidate, blocks, params)?;
    build_paired_testbench(spec, &pairs, params, opts)
}

/// [`build_candidate_testbench`] over an already-matched stage/block list.
fn build_paired_testbench(
    spec: &AdcSpec,
    pairs: &[(adc_mdac::StageDesign, &MdacBlock)],
    params: &PowerModelParams,
    opts: &VerifyOptions,
) -> Result<PipelineTestbench, String> {
    let stages: Vec<MdacStageConfig> = pairs
        .iter()
        .map(|(design, block)| {
            let sizing = match block.requirements.template {
                TemplateKind::Telescopic => {
                    OtaSizing::Telescopic(TelescopicParams::from_vec(&block.result.best_x))
                }
                TemplateKind::TwoStage => {
                    OtaSizing::TwoStage(TwoStageParams::from_vec(&block.result.best_x))
                }
            };
            MdacStageConfig::from_design(design, sizing)
        })
        .collect();
    let pipeline_opts = PipelineOptions {
        with_sub_adc: opts.with_sub_adc,
        backend_c_load: floor_cap(spec, 2, params) + 2.0 * params.comparator_input_cap,
        c_cmp: params.comparator_input_cap,
        ..Default::default()
    };
    build_pipeline(&spec.process, &stages, &pipeline_opts).map_err(|e| e.to_string())
}

/// Prepares a transient sign-off setup from a built chain testbench: the
/// spec's sampling clock, the testbench's alternating φ1/φ2 stage
/// schedule, and the chain's nodeset-seeded DC options.
pub fn build_tran_setup(
    spec: &AdcSpec,
    tb: &PipelineTestbench,
    stage_gains: Vec<f64>,
) -> TranChainSetup {
    TranChainSetup {
        circuit: tb.circuit.clone(),
        input_source: tb.input_source.clone(),
        stage_outputs: tb.stage_outputs.clone(),
        stage_amplify: (0..tb.stages.len())
            .map(|k| tb.stage_amplify_phase(k))
            .collect(),
        stage_gains,
        clock: Clock {
            freq: spec.fs,
            nonoverlap: spec.t_nonoverlap,
        },
        mid_rail: tb.mid_rail,
        full_scale: spec.full_scale,
        resolution: spec.resolution,
        dc: tb.dc_options(),
    }
}

/// Verifies one ranked candidate at the circuit level: builds its chain
/// testbench from the synthesized blocks, solves it through the reusable
/// workspaces, and reports chain-level gain/settling/power next to the
/// summed-stage estimates.
///
/// # Errors
/// A human-readable reason (missing block, netlist assembly, DC/TF
/// failure).
pub fn verify_candidate(
    spec: &AdcSpec,
    candidate: &Candidate,
    blocks: &[MdacBlock],
    params: &PowerModelParams,
    opts: &VerifyOptions,
) -> Result<ChainVerification, String> {
    let pairs = stage_blocks(spec, candidate, blocks, params)?;
    let tb = build_paired_testbench(spec, &pairs, params, opts)?;
    let mut chain_opts = opts.chain.clone();
    chain_opts.dc.nodeset = tb.nodeset();
    chain_opts.dc.damping = adc_spice::dc::DcDamping::PerNode;
    let mut evaluator = ChainEvaluator::with_solver(opts.solver, chain_opts);
    let bench = BenchSetup::new(
        tb.circuit.clone(),
        tb.output,
        tb.supply.clone(),
        tb.devices.clone(),
    );
    let report = evaluator.evaluate(&bench)?;

    // Dynamic leg: run the same netlist through the clocked transient
    // engine and sign off per-stage settling under real phases.
    let tran = match &opts.tran {
        Some(tran_opts) => {
            let gains = pairs.iter().map(|(d, _)| d.spec.gain).collect();
            let mut setup = build_tran_setup(spec, &tb, gains);
            let mut ev = TranChainEvaluator::with_solver(opts.solver, tran_opts.clone());
            Some(ev.evaluate(&mut setup)?)
        }
        None => None,
    };

    let power_summed = pairs
        .iter()
        .map(|(_, b)| b.result.best_perf.get("power").unwrap_or(f64::NAN))
        .sum();
    let power_analytic: f64 = pairs.iter().map(|(d, _)| d.power_opamp).sum();
    Ok(ChainVerification {
        config: candidate.to_string(),
        resolution: spec.resolution,
        report,
        tran,
        gain_expected: tb.expected_gain,
        power_summed,
        power_analytic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{run_flow, FlowRequest};
    use adc_synth::SynthConfig;

    /// End-to-end: synthesize the 10-bit winner's blocks on a tiny budget
    /// and verify the chain. The 3-2 chain must solve DC, keep its gain
    /// near ∏G = 8, and report power in the same decade as the summed
    /// estimate.
    #[test]
    fn verify_ten_bit_winner_chain() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let candidate = Candidate::new(vec![3, 2]);
        let cfg = SynthConfig {
            iterations: 60,
            nm_iterations: 20,
            seed: 9,
            ..Default::default()
        };
        let cands = std::slice::from_ref(&candidate);
        let blocks = run_flow(&FlowRequest::new(&spec, cands, &params, &cfg), None).blocks;
        let v = verify_candidate(
            &spec,
            &candidate,
            &blocks,
            &params,
            &VerifyOptions::default(),
        )
        .unwrap();
        assert_eq!(v.config, "3-2");
        assert_eq!(v.gain_expected, 8.0);
        assert!(v.report.mna_dim > 60, "dim {}", v.report.mna_dim);
        assert!(v.report.dc_sparse && v.report.tf_sparse);
        // Small-budget sizings still produce a working residue chain.
        assert!(v.gain_error() < 0.15, "gain {}", v.report.gain);
        assert!(v.report.power > 0.0 && v.report.power < 0.1);
        assert!(v.power_summed > 0.0);
        assert!(v.power_analytic > 0.0);
        // The dynamic leg ran: both stages amplified their residues under
        // the real clock schedule.
        let tr = v.tran.as_ref().expect("transient sign-off ran");
        assert_eq!(tr.stages.len(), 2);
        assert!(tr.accepted > 0 && tr.min_dt > 0.0);
        for (k, s) in tr.stages.iter().enumerate() {
            assert!(
                s.residue_gain > 0.5 * s.ideal_gain,
                "stage {k}: residue gain {} vs ideal {}",
                s.residue_gain,
                s.ideal_gain
            );
        }
    }

    #[test]
    fn missing_block_is_reported() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let candidate = Candidate::new(vec![3, 2]);
        let err = verify_candidate(&spec, &candidate, &[], &params, &VerifyOptions::default())
            .unwrap_err();
        assert!(err.contains("no synthesized block"), "{err}");
    }
}
