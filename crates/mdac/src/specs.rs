//! ADC-level and stage-level specifications, and the translation between
//! them (§2 of the paper: "The MDAC block-level specifications can be
//! translated from the ADC system-level specifications and the value mᵢ for
//! the enumerated candidate").

use adc_numerics::quant::Fingerprint;
use adc_spice::process::Process;

/// Significant decimal digits of the **normalized-spec grid**: block-level
/// requirement values are quantized to this many digits before entering a
/// cache key, so independent derivations of the same physical spec (e.g.
/// the same `(m, input-accuracy)` stage reached from two resolutions)
/// collapse onto one key while genuinely different specs stay apart.
/// Requirement values in this flow differ by ≥ ~0.1 % when they differ at
/// all; 9 digits leaves six orders of margin on either side.
pub const SPEC_NORM_DIGITS: u32 = 9;

/// System-level converter specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AdcSpec {
    /// Total effective resolution K, bits.
    pub resolution: u32,
    /// Sampling rate, Hz.
    pub fs: f64,
    /// Differential full-scale range (peak-to-peak), V.
    pub full_scale: f64,
    /// Non-overlap time between clock phases, s.
    pub t_nonoverlap: f64,
    /// Target process.
    pub process: Process,
}

impl AdcSpec {
    /// The paper's evaluation point: a `resolution`-bit, 40 MSPS converter
    /// in the 0.25 µm 3.3 V process with a 2 V differential full scale.
    pub fn date05(resolution: u32) -> Self {
        AdcSpec {
            resolution,
            fs: 40e6,
            full_scale: 2.0,
            t_nonoverlap: 1e-9,
            process: Process::c025(),
        }
    }

    /// Amplification (hold-phase) time available to the MDAC: half a period
    /// minus the non-overlap interval.
    pub fn t_amplify(&self) -> f64 {
        0.5 / self.fs - self.t_nonoverlap
    }

    /// LSB size at full resolution, V.
    pub fn lsb(&self) -> f64 {
        self.full_scale / (1u64 << self.resolution) as f64
    }

    /// Quantization-noise power `LSB²/12`, V².
    pub fn quantization_noise_power(&self) -> f64 {
        let l = self.lsb();
        l * l / 12.0
    }
}

/// Block-level specification of one front-end stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpec {
    /// Position in the pipeline (0-based).
    pub index: usize,
    /// Raw sub-ADC resolution `m` (one bit is redundancy).
    pub bits: u32,
    /// Accuracy (bits) the stage input must be treated to: `K − Σ_{j<i} rⱼ`.
    pub input_accuracy: u32,
    /// Accuracy (bits) the amplified residue must settle to:
    /// `input_accuracy − (m−1)`.
    pub output_accuracy: u32,
    /// Interstage gain `2^{m−1}`.
    pub gain: f64,
    /// True if this is the last enumerated front-end stage (its load is the
    /// backend).
    pub is_last_front: bool,
}

impl StageSpec {
    /// Effective bits resolved by this stage.
    pub fn effective_bits(&self) -> u32 {
        self.bits - 1
    }

    /// Comparators in this stage's sub-ADC: `2^m − 2`.
    pub fn comparator_count(&self) -> usize {
        (1usize << self.bits) - 2
    }

    /// Maximum tolerable comparator offset under 1-bit redundancy,
    /// normalized to the reference: `1/2^m` (half the correction range).
    pub fn comparator_offset_budget(&self) -> f64 {
        1.0 / (1u64 << self.bits) as f64
    }

    /// A stable cache/reuse key: stages with the same `(m, input_accuracy)`
    /// have identical block specifications (the paper's "retargeting" reuse
    /// across candidates).
    pub fn reuse_key(&self) -> (u32, u32) {
        (self.bits, self.input_accuracy)
    }

    /// Deterministic fingerprint of the block specification — the
    /// stage-level component of a cross-run synthesis cache key. Position
    /// (`index`, `is_last_front`) is deliberately excluded: two stages with
    /// the same resolution and accuracies are the same *block* wherever
    /// they sit in a pipeline (the layout-reuse practice the paper
    /// describes).
    pub fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .add_u64(u64::from(self.bits))
            .add_u64(u64::from(self.input_accuracy))
            .add_u64(u64::from(self.output_accuracy))
            .add_quantized(self.gain, SPEC_NORM_DIGITS)
            .finish()
    }
}

/// Translates an ADC spec plus a front-end configuration `[m₁, m₂, …]` into
/// per-stage block specs.
///
/// # Panics
/// Panics if any `mᵢ < 2` or the configuration resolves more bits than the
/// converter has.
pub fn stage_specs(spec: &AdcSpec, front_bits: &[u32]) -> Vec<StageSpec> {
    let mut acc = 0u32;
    let n = front_bits.len();
    front_bits
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            assert!(m >= 2, "stage resolution must be at least 2 bits");
            let input_acc = spec
                .resolution
                .checked_sub(acc)
                .expect("configuration resolves more bits than the ADC has");
            let r = m - 1;
            assert!(input_acc > r, "no residual resolution left for stage {i}");
            acc += r;
            StageSpec {
                index: i,
                bits: m,
                input_accuracy: input_acc,
                output_accuracy: input_acc - r,
                gain: (1u64 << r) as f64,
                is_last_front: i + 1 == n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date05_defaults() {
        let s = AdcSpec::date05(13);
        assert_eq!(s.resolution, 13);
        assert_eq!(s.fs, 40e6);
        assert!((s.t_amplify() - 11.5e-9).abs() < 1e-15);
        assert!((s.lsb() - 2.0 / 8192.0).abs() < 1e-15);
    }

    #[test]
    fn chain_432_for_13_bit() {
        let s = AdcSpec::date05(13);
        let specs = stage_specs(&s, &[4, 3, 2]);
        assert_eq!(specs.len(), 3);
        assert_eq!(
            specs.iter().map(|x| x.input_accuracy).collect::<Vec<_>>(),
            vec![13, 10, 8]
        );
        assert_eq!(
            specs.iter().map(|x| x.output_accuracy).collect::<Vec<_>>(),
            vec![10, 8, 7]
        );
        assert_eq!(specs[0].gain, 8.0);
        assert_eq!(specs[2].gain, 2.0);
        assert!(specs[2].is_last_front);
        assert!(!specs[0].is_last_front);
    }

    #[test]
    fn comparator_counts() {
        let s = AdcSpec::date05(13);
        let specs = stage_specs(&s, &[4, 3, 2]);
        assert_eq!(
            specs
                .iter()
                .map(|x| x.comparator_count())
                .collect::<Vec<_>>(),
            vec![14, 6, 2]
        );
        assert!((specs[0].comparator_offset_budget() - 1.0 / 16.0).abs() < 1e-15);
    }

    #[test]
    fn fingerprints_follow_reuse_keys_across_resolutions() {
        // The same (m, input-accuracy) block reached from two different
        // converter resolutions must fingerprint identically — the property
        // the cross-resolution cache key relies on.
        let a = stage_specs(&AdcSpec::date05(13), &[4, 3, 2]);
        let b = stage_specs(&AdcSpec::date05(11), &[4, 2]);
        assert_eq!(a[2].reuse_key(), b[1].reuse_key()); // both (2, 8)
        assert_eq!(a[2].fingerprint(), b[1].fingerprint());
        assert_ne!(a[0].fingerprint(), a[1].fingerprint());
    }

    #[test]
    fn reuse_keys_dedupe_across_configs() {
        let s = AdcSpec::date05(13);
        let a = stage_specs(&s, &[4, 3, 2]);
        let b = stage_specs(&s, &[4, 2, 2, 2]);
        // Both first stages are (4, 13): same block spec.
        assert_eq!(a[0].reuse_key(), b[0].reuse_key());
        assert_ne!(a[1].reuse_key(), b[1].reuse_key());
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn rejects_one_bit_stage() {
        stage_specs(&AdcSpec::date05(10), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "residual resolution")]
    fn rejects_overfull_chain() {
        // 4-4-4-4 resolves 12 effective bits; a 12-bit ADC leaves nothing
        // for the backend by stage 4.
        stage_specs(&AdcSpec::date05(12), &[4, 4, 4, 4]);
    }
}
