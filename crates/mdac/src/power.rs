//! The designer-derived analytic stage-power model.
//!
//! This is the "designer-derived analytical models for system-level
//! description" half of the paper's hybrid methodology: closed-form design
//! equations size each MDAC stage (capacitors → feedback factor → settling
//! transconductance → slew current → topology from the static-gain floor)
//! and estimate its power; circuit-level synthesis (`adc-synth`) then
//! grounds the same stages with simulation-in-the-loop sizing.
//!
//! Every constant a designer would calibrate against their process lives in
//! [`PowerModelParams`]; [`PowerModelParams::calibrated`] holds the values
//! tuned (see `EXPERIMENTS.md`) so the model reproduces the paper's
//! qualitative results — minimum-power configurations 3-2 / 4-2 / 4-2-2 /
//! 4-3-2 for 10–13 bits, a near-flat first-stage power across m₁, and a
//! 2-bit final front-end stage.

use crate::comparator::{design_comparators, ComparatorBank};
use crate::sizing::{floor_cap, size_stage_caps, CapPlan};
use crate::specs::{stage_specs, AdcSpec, StageSpec};

/// OTA topology classes available to the stage designer, ordered by power
/// overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OtaTopology {
    /// Plain telescopic cascode: cheapest, moderate gain.
    Telescopic,
    /// Folded cascode: better swing/level compatibility, more current.
    FoldedCascode,
    /// Gain-boosted telescopic: high gain, small boost-amp overhead.
    GainBoostedTelescopic,
    /// Two-stage Miller with cascoded first stage: highest gain and swing,
    /// highest current overhead.
    TwoStageMiller,
}

impl OtaTopology {
    /// All topologies in ascending power-overhead order.
    pub fn all() -> [OtaTopology; 4] {
        [
            OtaTopology::Telescopic,
            OtaTopology::GainBoostedTelescopic,
            OtaTopology::FoldedCascode,
            OtaTopology::TwoStageMiller,
        ]
    }
}

impl std::fmt::Display for OtaTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OtaTopology::Telescopic => write!(f, "telescopic"),
            OtaTopology::FoldedCascode => write!(f, "folded-cascode"),
            OtaTopology::GainBoostedTelescopic => write!(f, "gain-boosted telescopic"),
            OtaTopology::TwoStageMiller => write!(f, "two-stage Miller"),
        }
    }
}

/// Calibration constants of the analytic model (all SI units).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModelParams {
    /// Thermal-noise budget as a fraction of quantization noise (κ).
    pub noise_quant_ratio: f64,
    /// Sampling-network noise excess (both phases + switches), α_n.
    pub sampling_noise_factor: f64,
    /// Amplifier-noise excess proportional to β (low-gain stages feel the
    /// opamp noise almost fully).
    pub amp_noise_beta_factor: f64,
    /// Matching requirement margin in σ (3 = 3σ design).
    pub matching_sigma_margin: f64,
    /// Layout/averaging improvement factor on unit-cap matching.
    pub layout_averaging: f64,
    /// Absolute minimum sampling capacitance (wiring floor), F.
    pub cap_floor: f64,
    /// OTA input-loading ratio χ: β = 1/(G·(1+χ)).
    pub input_loading_ratio: f64,
    /// OTA output self-loading: `c_out_fixed + c_out_frac·C_samp`, F.
    pub c_out_fixed: f64,
    /// Fractional output self-loading vs the stage's own sampling cap.
    pub c_out_frac: f64,
    /// Fraction of the feedback network that loads the output:
    /// `C_Leff = C_L + feedback_load_frac·C_f`.
    pub feedback_load_frac: f64,
    /// Fraction of the amplification phase reserved for slewing.
    pub slew_fraction: f64,
    /// Worst-case slewed output step, fraction of full scale.
    pub slew_step_fraction: f64,
    /// Input-pair overdrive voltage, V.
    pub v_overdrive: f64,
    /// Static-error share of the half-LSB budget allocated to finite gain
    /// (2 = half of it).
    pub static_gain_margin: f64,
    /// Achievable DC gain per topology: telescopic.
    pub a0_telescopic: f64,
    /// Achievable DC gain: folded cascode.
    pub a0_folded: f64,
    /// Achievable DC gain: gain-boosted telescopic.
    pub a0_boosted: f64,
    /// Achievable DC gain: two-stage Miller (cascoded first stage).
    pub a0_two_stage: f64,
    /// Power multiplier (vs VDD·I_tail) per topology: telescopic.
    pub factor_telescopic: f64,
    /// Power multiplier: folded cascode.
    pub factor_folded: f64,
    /// Power multiplier: gain-boosted telescopic.
    pub factor_boosted: f64,
    /// Power multiplier: two-stage Miller.
    pub factor_two_stage: f64,
    /// Input capacitance of one comparator (preamp/latch input pair plus
    /// routing), F — loads the *previous* stage's output, so multibit
    /// downstream sub-ADCs are expensive to drive.
    pub comparator_input_cap: f64,
    /// Per-comparator power at the target rate (dynamic latch + ladder
    /// share), W.
    pub comparator_power: f64,
    /// Power multiplier when a preamp is needed (offset beyond redundancy).
    pub comparator_preamp_factor: f64,
    /// Achievable dynamic-latch offset σ, normalized to the reference.
    pub comparator_offset_sigma: f64,
    /// Fixed per-stage overhead (clock drivers, bias, CMFB, references), W.
    pub stage_fixed_power: f64,
}

impl PowerModelParams {
    /// Constants calibrated so the model reproduces the paper's reported
    /// optima (see DESIGN.md "Shape criteria"). Derivations and the
    /// calibration protocol are documented in EXPERIMENTS.md.
    pub fn calibrated() -> Self {
        PowerModelParams {
            noise_quant_ratio: 1.0,
            sampling_noise_factor: 2.31,
            amp_noise_beta_factor: 2.28,
            matching_sigma_margin: 3.0,
            layout_averaging: 4.26,
            cap_floor: 62.55e-15,
            input_loading_ratio: 0.141,
            c_out_fixed: 80e-15,
            c_out_frac: 0.03,
            feedback_load_frac: 0.8,
            slew_fraction: 0.368,
            slew_step_fraction: 0.854,
            v_overdrive: 0.344,
            static_gain_margin: 2.0,
            a0_telescopic: 1702.0,
            a0_folded: 1800.0,
            a0_boosted: 3e6,
            a0_two_stage: 1e5,
            factor_telescopic: 1.05,
            factor_boosted: 1.708,
            factor_folded: 2.0,
            factor_two_stage: 2.5,
            comparator_input_cap: 10.59e-15,
            comparator_power: 4.20e-5,
            comparator_preamp_factor: 3.0,
            comparator_offset_sigma: 15e-3,
            stage_fixed_power: 0.9357e-3,
        }
    }

    /// Topology capability/overhead table in ascending-overhead order.
    fn topology_table(&self) -> [(OtaTopology, f64, f64); 4] {
        [
            (
                OtaTopology::Telescopic,
                self.a0_telescopic,
                self.factor_telescopic,
            ),
            (
                OtaTopology::GainBoostedTelescopic,
                self.a0_boosted,
                self.factor_boosted,
            ),
            (
                OtaTopology::FoldedCascode,
                self.a0_folded,
                self.factor_folded,
            ),
            (
                OtaTopology::TwoStageMiller,
                self.a0_two_stage,
                self.factor_two_stage,
            ),
        ]
    }

    /// Picks the cheapest topology meeting a DC-gain requirement.
    pub fn select_topology(&self, a0_required: f64) -> Option<(OtaTopology, f64)> {
        let mut best: Option<(OtaTopology, f64)> = None;
        for (topo, cap, factor) in self.topology_table() {
            if cap >= a0_required && best.map_or(true, |(_, bf)| factor < bf) {
                best = Some((topo, factor));
            }
        }
        best
    }
}

impl Default for PowerModelParams {
    fn default() -> Self {
        PowerModelParams::calibrated()
    }
}

/// Full analytic design of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDesign {
    /// The block specification this design implements.
    pub spec: StageSpec,
    /// Capacitor plan.
    pub caps: CapPlan,
    /// Load capacitance seen during amplification (next stage + parasitics), F.
    pub c_load: f64,
    /// Effective settling load `C_L + feedback share`, F.
    pub c_load_eff: f64,
    /// Settling time constants required, `ln 2 · (B+1)`.
    pub n_tau: f64,
    /// Required transconductance, S.
    pub gm: f64,
    /// Slew-limited tail current, A.
    pub i_slew: f64,
    /// Chosen tail current, A.
    pub i_tail: f64,
    /// Required DC gain (linear).
    pub a0_required: f64,
    /// Selected OTA topology.
    pub topology: OtaTopology,
    /// MDAC (opamp) power, W.
    pub power_opamp: f64,
    /// Sub-ADC comparator-bank design.
    pub comparators: ComparatorBank,
    /// Fixed per-stage overhead, W.
    pub power_fixed: f64,
    /// Total stage power, W.
    pub power_total: f64,
}

/// Designs one stage given the capacitance its residue must drive.
pub fn design_stage(
    spec: &AdcSpec,
    st: &StageSpec,
    c_next: f64,
    p: &PowerModelParams,
) -> StageDesign {
    let caps = size_stage_caps(spec, st, p);
    let c_load = c_next + p.c_out_fixed + p.c_out_frac * caps.c_samp;
    let c_load_eff = c_load + p.feedback_load_frac * caps.c_f;

    let t_amp = spec.t_amplify();
    let t_lin = t_amp * (1.0 - p.slew_fraction);
    let t_slew = t_amp * p.slew_fraction;

    // Linear settling: e^{−t/τ} ≤ 2^{−(B+1)} → N_τ = ln2·(B+1).
    let n_tau = std::f64::consts::LN_2 * (st.output_accuracy + 1) as f64;
    let gm = c_load_eff * n_tau / (caps.beta * t_lin);

    // Slew: class-A differential pair slews C_Leff with the tail current.
    let i_slew = p.slew_step_fraction * spec.full_scale / t_slew * c_load_eff;

    // Square law: gm = 2·I_D/Veff per side; I_tail = 2·I_D = gm·Veff.
    let i_gm = gm * p.v_overdrive;
    let i_tail = i_gm.max(i_slew);

    // Static gain: the closed-loop gain error 1/(A0·β) must stay below the
    // residue's output-accuracy budget, 2^{−(B+1)}/margin. (Note the budget
    // is at the *output* accuracy B: the back-end only resolves B more
    // bits. With β ≈ 2^{−(m−1)} this makes A0_req ≈ 2^{A+1}·margin·(1+χ) —
    // nearly independent of the stage resolution, one reason multibit
    // first stages are not gain-penalized.)
    let a0_required = (1u64 << (st.output_accuracy + 1)) as f64 * p.static_gain_margin / caps.beta;
    let (topology, factor) = p
        .select_topology(a0_required)
        .unwrap_or((OtaTopology::TwoStageMiller, p.factor_two_stage));

    let power_opamp = spec.process.vdd * i_tail * factor;
    let comparators = design_comparators(spec, st, p);
    let power_fixed = p.stage_fixed_power;
    let power_total = power_opamp + comparators.power + power_fixed;

    StageDesign {
        spec: *st,
        caps,
        c_load,
        c_load_eff,
        n_tau,
        gm,
        i_slew,
        i_tail,
        a0_required,
        topology,
        power_opamp,
        comparators,
        power_fixed,
        power_total,
    }
}

/// Designs a whole front-end chain for configuration `front_bits`.
///
/// Capacitors are sized front-to-back; each stage's load is the next
/// stage's sampling capacitor (the backend's input cap for the last front
/// stage).
pub fn design_chain(spec: &AdcSpec, front_bits: &[u32], p: &PowerModelParams) -> Vec<StageDesign> {
    let sts = stage_specs(spec, front_bits);
    let plans: Vec<CapPlan> = sts.iter().map(|s| size_stage_caps(spec, s, p)).collect();
    // Backend: a 1.5-bit (m = 2) tail stage samples the last residue; its
    // two comparators load the node too.
    let backend_cap = floor_cap(spec, 2, p) + 2.0 * p.comparator_input_cap;
    sts.iter()
        .enumerate()
        .map(|(i, st)| {
            let c_next = if i + 1 < plans.len() {
                plans[i + 1].c_samp + sts[i + 1].comparator_count() as f64 * p.comparator_input_cap
            } else {
                backend_cap
            };
            design_stage(spec, st, c_next, p)
        })
        .collect()
}

/// Total front-end power of a configuration, W.
pub fn chain_power(spec: &AdcSpec, front_bits: &[u32], p: &PowerModelParams) -> f64 {
    design_chain(spec, front_bits, p)
        .iter()
        .map(|d| d.power_total)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PowerModelParams {
        PowerModelParams::calibrated()
    }

    #[test]
    fn stage_power_decays_along_pipeline() {
        let spec = AdcSpec::date05(13);
        for cfg in [vec![4u32, 3, 2], vec![3, 3, 3], vec![2, 2, 2, 2, 2, 2]] {
            let chain = design_chain(&spec, &cfg, &p());
            for w in chain.windows(2) {
                assert!(
                    w[0].power_total > w[1].power_total * 0.95,
                    "cfg {cfg:?}: stage {} ({:.2} mW) vs stage {} ({:.2} mW)",
                    w[0].spec.index,
                    w[0].power_total * 1e3,
                    w[1].spec.index,
                    w[1].power_total * 1e3
                );
            }
        }
    }

    #[test]
    fn first_stage_gm_is_millisiemens_class() {
        let spec = AdcSpec::date05(13);
        let chain = design_chain(&spec, &[4, 3, 2], &p());
        assert!(
            chain[0].gm > 1e-3 && chain[0].gm < 50e-3,
            "gm = {}",
            chain[0].gm
        );
        assert!(chain[0].i_tail > 0.2e-3 && chain[0].i_tail < 10e-3);
    }

    #[test]
    fn topology_selection_honors_gain_requirement() {
        let pp = p();
        let (t, _) = pp.select_topology(1000.0).unwrap();
        assert_eq!(t, OtaTopology::Telescopic);
        let (t, _) = pp.select_topology(50_000.0).unwrap();
        assert_eq!(t, OtaTopology::GainBoostedTelescopic);
        assert!(pp.select_topology(1e9).is_none());
    }

    #[test]
    fn first_stage_needs_high_gain_at_13_bits() {
        let spec = AdcSpec::date05(13);
        let chain = design_chain(&spec, &[4, 3, 2], &p());
        assert!(
            chain[0].a0_required > 1e4,
            "A0 req = {}",
            chain[0].a0_required
        );
        assert_eq!(chain[0].topology, OtaTopology::GainBoostedTelescopic);
        // The cheap last stage should get away with less.
        assert!(chain[2].a0_required < chain[0].a0_required / 10.0);
    }

    #[test]
    fn power_is_physical_milliwatts() {
        let spec = AdcSpec::date05(13);
        for cfg in [vec![4u32, 3, 2], vec![4, 4], vec![2, 2, 2, 2, 2, 2]] {
            let total = chain_power(&spec, &cfg, &p());
            assert!(
                total > 3e-3 && total < 60e-3,
                "cfg {cfg:?}: {:.2} mW",
                total * 1e3
            );
        }
    }

    #[test]
    fn lower_resolution_needs_less_power() {
        let p = p();
        let p10 = chain_power(&AdcSpec::date05(10), &[3, 2], &p);
        let p13 = chain_power(&AdcSpec::date05(13), &[3, 2], &p);
        assert!(p10 < p13, "{p10} vs {p13}");
    }

    #[test]
    fn slew_current_counted() {
        let spec = AdcSpec::date05(13);
        let chain = design_chain(&spec, &[4, 3, 2], &p());
        for d in &chain {
            assert!(d.i_tail >= d.i_slew);
            assert!(d.i_tail >= d.gm * 0.25 * 0.999);
        }
    }
}
