//! Transistor-level OTA templates for the circuit-grounded synthesis leg.
//!
//! Each template builds a complete *testbench*: the amplifier netlist plus
//! an operating-point servo (a VCVS driving the input bias through a very
//! slow low-pass sense of the output) that holds the output at mid-rail
//! regardless of sizing — the standard trick that lets an optimizer explore
//! high-gain amplifiers without the DC point latching to a rail. The servo
//! corner sits at sub-Hz frequencies, so AC behaviour above ~1 kHz is the
//! amplifier's own.
//!
//! Two templates are provided, matching the topology classes the analytic
//! model selects between:
//! * [`build_telescopic`] — single-ended telescopic cascode (NMOS input,
//!   PMOS cascode load), the low-power choice;
//! * [`build_two_stage`] — two-stage Miller-compensated amplifier with a
//!   zero-nulling resistor, the high-gain/high-swing choice.

use adc_spice::netlist::{Circuit, ElementId, NodeId};
use adc_spice::process::Process;

/// A bounded design variable of an OTA template.
#[derive(Debug, Clone, PartialEq)]
pub struct VarBound {
    /// Variable name (matches the parameter struct field).
    pub name: &'static str,
    /// Lower bound (SI units).
    pub lo: f64,
    /// Upper bound (SI units).
    pub hi: f64,
    /// Explore on a log scale (widths, lengths, caps) or linear (voltages).
    pub log: bool,
}

/// A ready-to-simulate OTA testbench.
#[derive(Debug, Clone)]
pub struct OtaTestbench {
    /// The netlist (amplifier + bias servo + load).
    pub circuit: Circuit,
    /// Amplifier output node.
    pub output: NodeId,
    /// Name of the AC-driven input source.
    pub input_source: String,
    /// Name of the supply source (power is read from its branch current).
    pub supply: String,
    /// Names of the amplifier MOSFETs (for saturation checks).
    pub devices: Vec<String>,
    /// Load capacitance used, F.
    pub c_load: f64,
}

/// Sizing parameters of the telescopic template.
#[derive(Debug, Clone, PartialEq)]
pub struct TelescopicParams {
    /// Input-device width, m.
    pub w_in: f64,
    /// NMOS cascode width, m.
    pub w_casc: f64,
    /// PMOS cascode width, m.
    pub w_pcasc: f64,
    /// PMOS current-source width, m.
    pub w_psrc: f64,
    /// Input-device length, m.
    pub l_in: f64,
    /// PMOS length, m.
    pub l_p: f64,
    /// NMOS cascode gate bias, V.
    pub vbn: f64,
    /// PMOS cascode gate bias, V.
    pub vbp1: f64,
    /// PMOS source gate bias, V.
    pub vbp2: f64,
}

impl TelescopicParams {
    /// A hand-designed point that biases correctly in the 0.25 µm process —
    /// a reasonable synthesis starting point.
    pub fn nominal() -> Self {
        TelescopicParams {
            w_in: 60e-6,
            w_casc: 60e-6,
            w_pcasc: 120e-6,
            w_psrc: 120e-6,
            l_in: 0.5e-6,
            l_p: 0.5e-6,
            vbn: 1.3,
            vbp1: 1.9,
            vbp2: 2.45,
        }
    }

    /// Variable bounds for the synthesis engine.
    pub fn bounds() -> Vec<VarBound> {
        vec![
            VarBound {
                name: "w_in",
                lo: 2e-6,
                hi: 600e-6,
                log: true,
            },
            VarBound {
                name: "w_casc",
                lo: 2e-6,
                hi: 600e-6,
                log: true,
            },
            VarBound {
                name: "w_pcasc",
                lo: 4e-6,
                hi: 1200e-6,
                log: true,
            },
            VarBound {
                name: "w_psrc",
                lo: 4e-6,
                hi: 1200e-6,
                log: true,
            },
            VarBound {
                name: "l_in",
                lo: 0.25e-6,
                hi: 2e-6,
                log: true,
            },
            VarBound {
                name: "l_p",
                lo: 0.25e-6,
                hi: 2e-6,
                log: true,
            },
            VarBound {
                name: "vbn",
                lo: 0.9,
                hi: 1.9,
                log: false,
            },
            VarBound {
                name: "vbp1",
                lo: 1.5,
                hi: 2.4,
                log: false,
            },
            VarBound {
                name: "vbp2",
                lo: 2.1,
                hi: 3.0,
                log: false,
            },
        ]
    }

    /// Builds params from a flat vector in [`TelescopicParams::bounds`]
    /// order.
    ///
    /// # Panics
    /// Panics if `x.len() != 9`.
    pub fn from_vec(x: &[f64]) -> Self {
        assert_eq!(x.len(), 9, "telescopic template has 9 variables");
        TelescopicParams {
            w_in: x[0],
            w_casc: x[1],
            w_pcasc: x[2],
            w_psrc: x[3],
            l_in: x[4],
            l_p: x[5],
            vbn: x[6],
            vbp1: x[7],
            vbp2: x[8],
        }
    }

    /// Flattens to a vector in bounds order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.w_in,
            self.w_casc,
            self.w_pcasc,
            self.w_psrc,
            self.l_in,
            self.l_p,
            self.vbn,
            self.vbp1,
            self.vbp2,
        ]
    }
}

/// Servo loop gain used by all templates.
const SERVO_GAIN: f64 = 200.0;

/// Adds the output-servo bias network. Returns the servo-driven bias node.
///
/// `inverting` describes the amplifier from the biased gate to the output:
/// for an inverting amp the servo senses `out − target`, otherwise
/// `target − out`.
fn add_servo(ckt: &mut Circuit, out: NodeId, target_v: f64, inverting: bool) -> NodeId {
    let vt = ckt.node("servo_target");
    let lp = ckt.node("servo_lp");
    let vb = ckt.node("servo_bias");
    ckt.add_vsource("VTGT", vt, Circuit::GROUND, target_v);
    ckt.add_resistor("RLP", out, lp, 1e6);
    ckt.add_capacitor("CLP", lp, Circuit::GROUND, 1e-3);
    if inverting {
        ckt.add_vcvs("ESRV", vb, Circuit::GROUND, lp, vt, SERVO_GAIN);
    } else {
        ckt.add_vcvs("ESRV", vb, Circuit::GROUND, vt, lp, SERVO_GAIN);
    }
    vb
}

/// Builds the telescopic-cascode testbench with load `c_load`.
pub fn build_telescopic(process: &Process, p: &TelescopicParams, c_load: f64) -> OtaTestbench {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let nc = ckt.node("ncasc");
    let out = ckt.node("out");
    let np = ckt.node("npcasc");
    let vbn = ckt.node("vbn");
    let vbp1 = ckt.node("vbp1");
    let vbp2 = ckt.node("vbp2");

    ckt.add_vsource("VDD", vdd, Circuit::GROUND, process.vdd);
    ckt.add_vsource("VBN", vbn, Circuit::GROUND, p.vbn);
    ckt.add_vsource("VBP1", vbp1, Circuit::GROUND, p.vbp1);
    ckt.add_vsource("VBP2", vbp2, Circuit::GROUND, p.vbp2);

    // NMOS input + cascode.
    ckt.add_mosfet(
        "M1",
        nc,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        process.nmos,
        p.w_in,
        p.l_in,
    );
    ckt.add_mosfet(
        "M2",
        out,
        vbn,
        nc,
        Circuit::GROUND,
        process.nmos,
        p.w_casc,
        p.l_in,
    );
    // PMOS cascode + current source.
    ckt.add_mosfet("M3", out, vbp1, np, vdd, process.pmos, p.w_pcasc, p.l_p);
    ckt.add_mosfet("M4", np, vbp2, vdd, vdd, process.pmos, p.w_psrc, p.l_p);

    ckt.add_capacitor("CL", out, Circuit::GROUND, c_load);

    // Common-source NMOS input → inverting from gate to output.
    let vb = add_servo(&mut ckt, out, process.vdd / 2.0, true);
    // AC input in series with the servo bias.
    ckt.add_vsource_wave("VIN", g, vb, 0.0.into(), 1.0);

    OtaTestbench {
        circuit: ckt,
        output: out,
        input_source: "VIN".to_string(),
        supply: "VDD".to_string(),
        devices: vec!["M1".into(), "M2".into(), "M3".into(), "M4".into()],
        c_load,
    }
}

/// Element handles into a [`build_telescopic`] netlist, resolved once so
/// the synthesis loop can retune a persistent testbench **in place**
/// instead of rebuilding it per candidate.
#[derive(Debug, Clone, Copy)]
pub struct TelescopicHandles {
    vbn: ElementId,
    vbp1: ElementId,
    vbp2: ElementId,
    m1: ElementId,
    m2: ElementId,
    m3: ElementId,
    m4: ElementId,
}

impl TelescopicHandles {
    /// Resolves the tunable elements of a telescopic testbench by name.
    /// Returns `None` if the circuit is not a [`build_telescopic`] netlist.
    pub fn resolve(ckt: &Circuit) -> Option<Self> {
        let id = |name: &str| ckt.find_element(name).map(|(id, _)| id);
        Some(TelescopicHandles {
            vbn: id("VBN")?,
            vbp1: id("VBP1")?,
            vbp2: id("VBP2")?,
            m1: id("M1")?,
            m2: id("M2")?,
            m3: id("M3")?,
            m4: id("M4")?,
        })
    }

    /// Writes a new sizing into the netlist in place — after this call the
    /// circuit is element-for-element identical to a fresh
    /// [`build_telescopic`] with the same parameters.
    pub fn retune(&self, ckt: &mut Circuit, p: &TelescopicParams) {
        ckt.set_value(self.vbn, p.vbn);
        ckt.set_value(self.vbp1, p.vbp1);
        ckt.set_value(self.vbp2, p.vbp2);
        ckt.set_device_geometry(self.m1, p.w_in, p.l_in);
        ckt.set_device_geometry(self.m2, p.w_casc, p.l_in);
        ckt.set_device_geometry(self.m3, p.w_pcasc, p.l_p);
        ckt.set_device_geometry(self.m4, p.w_psrc, p.l_p);
    }
}

/// Sizing parameters of the two-stage Miller template.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageParams {
    /// First-stage input (NMOS) width, m.
    pub w1: f64,
    /// First-stage PMOS load width, m.
    pub w2: f64,
    /// Second-stage PMOS driver width, m.
    pub w3: f64,
    /// Second-stage NMOS sink width, m.
    pub w4: f64,
    /// First-stage length, m.
    pub l1: f64,
    /// Second-stage length, m.
    pub l2: f64,
    /// Miller compensation capacitor, F.
    pub cc: f64,
    /// Zero-nulling resistor, Ω.
    pub rz: f64,
    /// First-stage PMOS bias, V.
    pub vbp: f64,
    /// Second-stage NMOS bias, V.
    pub vbn2: f64,
}

impl TwoStageParams {
    /// A hand-designed starting point.
    pub fn nominal() -> Self {
        TwoStageParams {
            w1: 40e-6,
            w2: 60e-6,
            w3: 200e-6,
            w4: 40e-6,
            l1: 0.6e-6,
            l2: 0.5e-6,
            cc: 1.5e-12,
            rz: 500.0,
            vbp: 2.45,
            vbn2: 0.75,
        }
    }

    /// Variable bounds for the synthesis engine.
    pub fn bounds() -> Vec<VarBound> {
        vec![
            VarBound {
                name: "w1",
                lo: 2e-6,
                hi: 600e-6,
                log: true,
            },
            VarBound {
                name: "w2",
                lo: 4e-6,
                hi: 1200e-6,
                log: true,
            },
            VarBound {
                name: "w3",
                lo: 4e-6,
                hi: 2000e-6,
                log: true,
            },
            VarBound {
                name: "w4",
                lo: 2e-6,
                hi: 1000e-6,
                log: true,
            },
            VarBound {
                name: "l1",
                lo: 0.25e-6,
                hi: 2e-6,
                log: true,
            },
            VarBound {
                name: "l2",
                lo: 0.25e-6,
                hi: 1e-6,
                log: true,
            },
            VarBound {
                name: "cc",
                lo: 0.1e-12,
                hi: 10e-12,
                log: true,
            },
            VarBound {
                name: "rz",
                lo: 10.0,
                hi: 5e3,
                log: true,
            },
            VarBound {
                name: "vbp",
                lo: 2.1,
                hi: 3.0,
                log: false,
            },
            VarBound {
                name: "vbn2",
                lo: 0.6,
                hi: 1.4,
                log: false,
            },
        ]
    }

    /// Builds params from a flat vector in bounds order.
    ///
    /// # Panics
    /// Panics if `x.len() != 10`.
    pub fn from_vec(x: &[f64]) -> Self {
        assert_eq!(x.len(), 10, "two-stage template has 10 variables");
        TwoStageParams {
            w1: x[0],
            w2: x[1],
            w3: x[2],
            w4: x[3],
            l1: x[4],
            l2: x[5],
            cc: x[6],
            rz: x[7],
            vbp: x[8],
            vbn2: x[9],
        }
    }

    /// Flattens to a vector in bounds order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.w1, self.w2, self.w3, self.w4, self.l1, self.l2, self.cc, self.rz, self.vbp,
            self.vbn2,
        ]
    }
}

/// Element handles into a [`build_two_stage`] netlist — see
/// [`TelescopicHandles`] for the in-place retuning contract.
#[derive(Debug, Clone, Copy)]
pub struct TwoStageHandles {
    vbp: ElementId,
    vbn2: ElementId,
    m1: ElementId,
    m2: ElementId,
    m3: ElementId,
    m4: ElementId,
    cc: ElementId,
    rz: ElementId,
}

impl TwoStageHandles {
    /// Resolves the tunable elements of a two-stage testbench by name.
    /// Returns `None` if the circuit is not a [`build_two_stage`] netlist.
    pub fn resolve(ckt: &Circuit) -> Option<Self> {
        let id = |name: &str| ckt.find_element(name).map(|(id, _)| id);
        Some(TwoStageHandles {
            vbp: id("VBP")?,
            vbn2: id("VBN2")?,
            m1: id("M1")?,
            m2: id("M2")?,
            m3: id("M3")?,
            m4: id("M4")?,
            cc: id("CC")?,
            rz: id("RZ")?,
        })
    }

    /// Writes a new sizing into the netlist in place — after this call the
    /// circuit is element-for-element identical to a fresh
    /// [`build_two_stage`] with the same parameters.
    pub fn retune(&self, ckt: &mut Circuit, p: &TwoStageParams) {
        ckt.set_value(self.vbp, p.vbp);
        ckt.set_value(self.vbn2, p.vbn2);
        ckt.set_device_geometry(self.m1, p.w1, p.l1);
        ckt.set_device_geometry(self.m2, p.w2, p.l1);
        ckt.set_device_geometry(self.m3, p.w3, p.l2);
        ckt.set_device_geometry(self.m4, p.w4, p.l2);
        ckt.set_value(self.cc, p.cc);
        ckt.set_value(self.rz, p.rz);
    }
}

/// Builds the two-stage Miller testbench with load `c_load`.
pub fn build_two_stage(process: &Process, p: &TwoStageParams, c_load: f64) -> OtaTestbench {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let n1 = ckt.node("n1");
    let out = ckt.node("out");
    let cz = ckt.node("cz");
    let vbp = ckt.node("vbp");
    let vbn2 = ckt.node("vbn2");

    ckt.add_vsource("VDD", vdd, Circuit::GROUND, process.vdd);
    ckt.add_vsource("VBP", vbp, Circuit::GROUND, p.vbp);
    ckt.add_vsource("VBN2", vbn2, Circuit::GROUND, p.vbn2);

    // Stage 1: NMOS common source with PMOS current-source load.
    ckt.add_mosfet(
        "M1",
        n1,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        process.nmos,
        p.w1,
        p.l1,
    );
    ckt.add_mosfet("M2", n1, vbp, vdd, vdd, process.pmos, p.w2, p.l1);
    // Stage 2: PMOS common source with NMOS sink.
    ckt.add_mosfet("M3", out, n1, vdd, vdd, process.pmos, p.w3, p.l2);
    ckt.add_mosfet(
        "M4",
        out,
        vbn2,
        Circuit::GROUND,
        Circuit::GROUND,
        process.nmos,
        p.w4,
        p.l2,
    );
    // Miller compensation with zero-nulling resistor.
    ckt.add_capacitor("CC", n1, cz, p.cc);
    ckt.add_resistor("RZ", cz, out, p.rz);

    ckt.add_capacitor("CL", out, Circuit::GROUND, c_load);

    // Two inversions → non-inverting from gate to output.
    let vb = add_servo(&mut ckt, out, process.vdd / 2.0, false);
    ckt.add_vsource_wave("VIN", g, vb, 0.0.into(), 1.0);

    OtaTestbench {
        circuit: ckt,
        output: out,
        input_source: "VIN".to_string(),
        supply: "VDD".to_string(),
        devices: vec!["M1".into(), "M2".into(), "M3".into(), "M4".into()],
        c_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_sfg::nettf::{extract_tf, NetTfOptions};
    use adc_spice::dc::{dc_operating_point, DcOptions};
    use adc_spice::mosfet::Region;

    #[test]
    fn telescopic_biases_at_midrail() {
        let proc = Process::c025();
        let tb = build_telescopic(&proc, &TelescopicParams::nominal(), 1e-12);
        let op = dc_operating_point(&tb.circuit, &DcOptions::default()).unwrap();
        let vout = op.voltage(tb.output);
        assert!((vout - 1.65).abs() < 0.3, "vout = {vout}");
        for d in &tb.devices {
            let ev = op.mos_eval(d).unwrap();
            assert_eq!(ev.region, Region::Saturation, "{d} not saturated: {ev:?}");
        }
        // Power should be sub-10 mW for the nominal sizing.
        let pw = op.source_power(&tb.circuit, "VDD").unwrap();
        assert!(pw > 10e-6 && pw < 20e-3, "power {pw}");
    }

    #[test]
    fn telescopic_has_high_gain_and_rolloff() {
        let proc = Process::c025();
        let tb = build_telescopic(&proc, &TelescopicParams::nominal(), 1e-12);
        let op = dc_operating_point(&tb.circuit, &DcOptions::default()).unwrap();
        let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
            .unwrap()
            .cancel_common_roots(1e-5);
        // Measure at 10 kHz (above the servo corner, below the amp poles).
        let a_low = tf.magnitude(1e4);
        assert!(a_low > 300.0, "A0 = {a_low}");
        let fu = tf.unity_gain_freq(1e4, 50e9);
        assert!(fu.is_some(), "no unity crossing");
        assert!(fu.unwrap() > 50e6, "fu = {:?}", fu);
    }

    #[test]
    fn two_stage_biases_and_amplifies() {
        let proc = Process::c025();
        let tb = build_two_stage(&proc, &TwoStageParams::nominal(), 2e-12);
        let op = dc_operating_point(&tb.circuit, &DcOptions::default()).unwrap();
        let vout = op.voltage(tb.output);
        assert!((vout - 1.65).abs() < 0.35, "vout = {vout}");
        let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
            .unwrap()
            .cancel_common_roots(1e-5);
        let a_low = tf.magnitude(1e4);
        assert!(a_low > 1000.0, "A0 = {a_low}");
    }

    #[test]
    fn miller_cap_splits_poles() {
        let proc = Process::c025();
        let mut p = TwoStageParams::nominal();
        p.cc = 0.2e-12;
        let tb_small = build_two_stage(&proc, &p, 2e-12);
        p.cc = 3e-12;
        let tb_big = build_two_stage(&proc, &p, 2e-12);
        let pm = |tb: &OtaTestbench| {
            let op = dc_operating_point(&tb.circuit, &DcOptions::default()).unwrap();
            let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
                .unwrap()
                .cancel_common_roots(1e-5);
            tf.phase_margin_deg(1e4, 50e9)
        };
        let pm_small = pm(&tb_small);
        let pm_big = pm(&tb_big);
        if let (Some(a), Some(b)) = (pm_small, pm_big) {
            assert!(b > a, "PM small-Cc {a} vs big-Cc {b}");
        } else {
            panic!("missing unity crossing: {pm_small:?} {pm_big:?}");
        }
    }

    #[test]
    fn retune_matches_rebuild() {
        let proc = Process::c025();
        let mut p = TelescopicParams::nominal();
        let mut tb = build_telescopic(&proc, &p, 1e-12);
        let h = TelescopicHandles::resolve(&tb.circuit).unwrap();
        p.w_in = 80e-6;
        p.vbn = 1.1;
        p.l_p = 0.3e-6;
        h.retune(&mut tb.circuit, &p);
        let fresh = build_telescopic(&proc, &p, 1e-12);
        assert_eq!(tb.circuit.elements(), fresh.circuit.elements());

        let mut q = TwoStageParams::nominal();
        let mut tb2 = build_two_stage(&proc, &q, 2e-12);
        let h2 = TwoStageHandles::resolve(&tb2.circuit).unwrap();
        q.w3 = 300e-6;
        q.cc = 2.2e-12;
        q.rz = 800.0;
        q.vbn2 = 0.8;
        h2.retune(&mut tb2.circuit, &q);
        let fresh2 = build_two_stage(&proc, &q, 2e-12);
        assert_eq!(tb2.circuit.elements(), fresh2.circuit.elements());
        // A telescopic netlist has no CC/RZ → two-stage handles don't bind.
        assert!(TwoStageHandles::resolve(&tb.circuit).is_none());
    }

    #[test]
    fn param_vec_round_trip() {
        let p = TelescopicParams::nominal();
        assert_eq!(TelescopicParams::from_vec(&p.to_vec()), p);
        let q = TwoStageParams::nominal();
        assert_eq!(TwoStageParams::from_vec(&q.to_vec()), q);
        assert_eq!(TelescopicParams::bounds().len(), 9);
        assert_eq!(TwoStageParams::bounds().len(), 10);
    }
}
