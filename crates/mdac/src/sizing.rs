//! Capacitor sizing and feedback-factor computation for flip-around MDACs.
//!
//! Three constraints set the sampling capacitor:
//! * **kT/C noise** — the sampled thermal noise, referred to the stage
//!   input, must fit the stage's share of the noise budget at its input
//!   accuracy; amplifier noise is folded in through a feedback-factor
//!   dependent excess term (low-gain stages feel the opamp noise almost
//!   fully, high-gain stages attenuate it).
//! * **matching** — the capacitor-ratio accuracy must support the MDAC gain
//!   accuracy at the stage's input accuracy (mitigated by a layout/
//!   averaging factor — common-centroid unit arrays do much better than
//!   naive √N of a lone unit pair).
//! * **practical floor** — at least one unit capacitor per DAC level and an
//!   absolute wiring-dominated minimum.

use crate::power::PowerModelParams;
use crate::specs::{AdcSpec, StageSpec};
use adc_numerics::constants::KT_NOMINAL;

/// Capacitor plan for one MDAC stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapPlan {
    /// Total sampling capacitance (differential half-circuit), F.
    pub c_samp: f64,
    /// Feedback capacitor `C/G`, F.
    pub c_f: f64,
    /// Feedback factor β including the OTA input-loading allowance.
    pub beta: f64,
    /// Which constraint set `c_samp`.
    pub limited_by: CapLimit,
}

/// The binding constraint on the sampling capacitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapLimit {
    /// kT/C thermal noise.
    Noise,
    /// Capacitor matching.
    Matching,
    /// Practical minimum (unit-cap count / wiring floor).
    Floor,
}

impl std::fmt::Display for CapLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapLimit::Noise => write!(f, "noise"),
            CapLimit::Matching => write!(f, "matching"),
            CapLimit::Floor => write!(f, "floor"),
        }
    }
}

/// Noise-limited capacitance for a stage whose input must be good to
/// `acc_bits`, with the β-dependent amplifier-noise excess.
pub fn noise_cap(spec: &AdcSpec, acc_bits: u32, beta: f64, p: &PowerModelParams) -> f64 {
    // Budget: thermal noise power = κ · quantization power at acc_bits.
    let lsb = spec.full_scale / (1u64 << acc_bits) as f64;
    let budget = p.noise_quant_ratio * lsb * lsb / 12.0;
    let excess = 1.0 + p.amp_noise_beta_factor * beta;
    p.sampling_noise_factor * KT_NOMINAL * excess / budget
}

/// Matching-limited capacitance at `acc_bits` input accuracy.
pub fn matching_cap(spec: &AdcSpec, acc_bits: u32, p: &PowerModelParams) -> f64 {
    let sigma_req =
        1.0 / ((1u64 << (acc_bits + 1)) as f64) / p.matching_sigma_margin * p.layout_averaging;
    let units_needed = (spec.process.cap_sigma_unit / sigma_req).powi(2);
    let unit_c = spec.process.cap_density * spec.process.cap_unit_area;
    units_needed * unit_c
}

/// Practical floor: one unit per DAC level, plus an absolute minimum.
pub fn floor_cap(spec: &AdcSpec, stage_bits: u32, p: &PowerModelParams) -> f64 {
    let unit_c = spec.process.cap_density * spec.process.cap_unit_area;
    let per_level = (1u64 << (stage_bits - 1)) as f64 * unit_c;
    per_level.max(p.cap_floor)
}

/// Sizes the sampling network of one stage.
pub fn size_stage_caps(spec: &AdcSpec, st: &StageSpec, p: &PowerModelParams) -> CapPlan {
    // β ≈ Cf/(Cs+Cf+Cin) = 1/(G·(1+χ)) with χ the OTA input-loading ratio.
    let beta = 1.0 / (st.gain * (1.0 + p.input_loading_ratio));
    let cn = noise_cap(spec, st.input_accuracy, beta, p);
    let cm = matching_cap(spec, st.input_accuracy, p);
    let cf_floor = floor_cap(spec, st.bits, p);
    let (c_samp, limited_by) = if cn >= cm && cn >= cf_floor {
        (cn, CapLimit::Noise)
    } else if cm >= cf_floor {
        (cm, CapLimit::Matching)
    } else {
        (cf_floor, CapLimit::Floor)
    };
    CapPlan {
        c_samp,
        c_f: c_samp / st.gain,
        beta,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::stage_specs;

    fn params() -> PowerModelParams {
        PowerModelParams::calibrated()
    }

    #[test]
    fn first_stage_13bit_is_picofarads() {
        // With the calibrated constants the 13-bit first stage is
        // matching-limited (no calibration assumed) at several picofarads —
        // kT/C noise alone would allow ~3 pF.
        let spec = AdcSpec::date05(13);
        let st = stage_specs(&spec, &[4, 3, 2]);
        let plan = size_stage_caps(&spec, &st[0], &params());
        assert_eq!(plan.limited_by, CapLimit::Matching);
        assert!(
            plan.c_samp > 1e-12 && plan.c_samp < 20e-12,
            "C1 = {}",
            plan.c_samp
        );
    }

    #[test]
    fn later_stages_hit_the_floor() {
        let spec = AdcSpec::date05(13);
        let st = stage_specs(&spec, &[4, 3, 2]);
        let plan3 = size_stage_caps(&spec, &st[2], &params());
        assert!(matches!(
            plan3.limited_by,
            CapLimit::Floor | CapLimit::Matching
        ));
        assert!(plan3.c_samp < 0.5e-12);
    }

    #[test]
    fn noise_cap_quadruples_per_bit() {
        let spec = AdcSpec::date05(13);
        let p = params();
        let c12 = noise_cap(&spec, 12, 0.2, &p);
        let c13 = noise_cap(&spec, 13, 0.2, &p);
        assert!((c13 / c12 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn beta_decreases_with_gain() {
        let spec = AdcSpec::date05(13);
        let p = params();
        let st = stage_specs(&spec, &[4, 3, 2]);
        let plans: Vec<CapPlan> = st.iter().map(|s| size_stage_caps(&spec, s, &p)).collect();
        assert!(plans[0].beta < plans[1].beta);
        assert!(plans[1].beta < plans[2].beta);
        // β ≈ 1/(G(1+χ))
        assert!((plans[0].beta * 8.0 * (1.0 + p.input_loading_ratio) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amp_noise_excess_penalizes_low_gain_stages() {
        let spec = AdcSpec::date05(13);
        let p = params();
        let c_low_beta = noise_cap(&spec, 13, 0.1, &p);
        let c_high_beta = noise_cap(&spec, 13, 0.4, &p);
        assert!(c_high_beta > c_low_beta);
    }

    #[test]
    fn floor_grows_with_stage_bits() {
        let spec = AdcSpec::date05(13);
        let p = params();
        assert!(floor_cap(&spec, 4, &p) >= floor_cap(&spec, 2, &p));
    }
}
