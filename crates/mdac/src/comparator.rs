//! Sub-ADC comparator model: offset budget check and power.
//!
//! Digital correction relaxes comparator accuracy to the redundancy range
//! (±Vref/2^m), so dynamic latches with a small preamp suffice for every
//! enumerated stage resolution; the power model is therefore a per-
//! comparator energy·rate term plus a small static share for the reference
//! ladder and preamp bias.

use crate::power::PowerModelParams;
use crate::specs::{AdcSpec, StageSpec};

/// Comparator bank design summary for one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparatorBank {
    /// Number of comparators (`2^m − 2`).
    pub count: usize,
    /// 1-σ offset of the chosen comparator, normalized to the reference.
    pub offset_sigma: f64,
    /// Offset budget (max tolerable), normalized.
    pub offset_budget: f64,
    /// Total bank power, W.
    pub power: f64,
}

/// Designs the comparator bank of a stage.
///
/// The achievable dynamic-latch offset σ is taken from the power-model
/// parameters; if the redundancy budget is tighter than `3σ`, a preamp
/// power multiplier is applied (never triggered for m ≤ 4 with the default
/// process numbers — exactly the paper's operating regime).
pub fn design_comparators(spec: &AdcSpec, st: &StageSpec, p: &PowerModelParams) -> ComparatorBank {
    let count = st.comparator_count();
    let budget = st.comparator_offset_budget();
    let sigma = p.comparator_offset_sigma;
    let needs_preamp = 3.0 * sigma > budget;
    let per_cmp = p.comparator_power
        * if needs_preamp {
            p.comparator_preamp_factor
        } else {
            1.0
        };
    let _ = spec;
    ComparatorBank {
        count,
        offset_sigma: sigma,
        offset_budget: budget,
        power: count as f64 * per_cmp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::stage_specs;

    #[test]
    fn counts_and_power_scale_with_bits() {
        let spec = AdcSpec::date05(13);
        let p = PowerModelParams::calibrated();
        let st = stage_specs(&spec, &[4, 3, 2]);
        let banks: Vec<ComparatorBank> = st
            .iter()
            .map(|s| design_comparators(&spec, s, &p))
            .collect();
        assert_eq!(banks[0].count, 14);
        assert_eq!(banks[1].count, 6);
        assert_eq!(banks[2].count, 2);
        assert!(banks[0].power > banks[1].power);
        assert!(banks[1].power > banks[2].power);
    }

    #[test]
    fn redundancy_keeps_dynamic_latches_sufficient() {
        let spec = AdcSpec::date05(13);
        let p = PowerModelParams::calibrated();
        for m in 2..=4u32 {
            let st = stage_specs(&spec, &[m, 2]);
            let bank = design_comparators(&spec, &st[0], &p);
            assert!(
                3.0 * bank.offset_sigma <= bank.offset_budget,
                "m={m}: 3σ = {} vs budget {}",
                3.0 * bank.offset_sigma,
                bank.offset_budget
            );
        }
    }
}
