//! # adc-mdac
//!
//! The block-design layer between the system-level enumeration and the
//! circuit-level synthesis: it translates ADC-level specifications into
//! per-stage MDAC block specifications (the paper's "MDAC block-level
//! specifications can be translated from the ADC system-level
//! specifications and the value mᵢ"), sizes capacitors from kT/C-noise and
//! matching requirements, derives opamp requirements (gm from settling,
//! slew current, static-gain floor), selects an OTA topology, models
//! sub-ADC comparators, and produces analytic power estimates.
//!
//! It also generates transistor-level OTA netlists (telescopic and
//! two-stage Miller templates) for the simulation-grounded synthesis in
//! `adc-synth`.
//!
//! ## Example
//!
//! ```
//! use adc_mdac::specs::AdcSpec;
//! use adc_mdac::power::{design_chain, PowerModelParams};
//!
//! let spec = AdcSpec::date05(13); // 13-bit 40 MSPS, 0.25 µm 3.3 V
//! let designs = design_chain(&spec, &[4, 3, 2], &PowerModelParams::calibrated());
//! assert_eq!(designs.len(), 3);
//! // First-stage sampling cap is kT/C-limited: picofarads.
//! assert!(designs[0].caps.c_samp > 1e-12);
//! // Total front-end power is milliwatts, not microwatts or watts.
//! let total: f64 = designs.iter().map(|d| d.power_total).sum();
//! assert!(total > 1e-3 && total < 100e-3);
//! ```

pub mod comparator;
pub mod netlist;
pub mod opamp;
pub mod power;
pub mod sizing;
pub mod specs;

pub use netlist::{build_pipeline, MdacStageConfig, OtaSizing, PipelineOptions, PipelineTestbench};
pub use power::{design_chain, PowerModelParams, StageDesign};
pub use specs::{AdcSpec, StageSpec};
