//! Stage-coupled switched-capacitor netlists: the MDAC stage as a
//! hierarchical subcircuit and the full-pipeline chain testbench.
//!
//! The paper signs off each ranked topology behaviourally; this module adds
//! the circuit-level leg: each front-end stage becomes a [`Subckt`] (OTA
//! core + flip-around capacitor array + clocked switches + output-bias
//! servo), and [`build_pipeline`] chains N of them with **real inter-stage
//! loading** — the next stage's sampling-capacitor array and its sub-ADC
//! comparator bank load the previous MDAC output, exactly the coupling the
//! per-stage power sum cannot see.
//!
//! ## Small-signal abstraction
//!
//! The chain testbench analyzes the amplification-phase configuration with
//! the signal path conducting: each stage is a capacitive-feedback
//! amplifier whose input array (`G` unit caps of `C_f` each, total
//! `C_s = G·C_f`) is driven by the previous stage and whose feedback unit
//! closes the loop through the φ2 switch, giving the ideal closed-loop
//! residue gain `−C_s/C_f = −G = −2^{m−1}`. Reference/DAC switches connect
//! the unit bottom plates to the (AC-ground) reference, and the sub-ADC
//! banks contribute their comparator input caps plus a resistive reference
//! ladder. DC bias comes from a per-stage servo (the same trick as the OTA
//! testbenches in [`crate::opamp`]) injecting through a 10 GΩ resistor into
//! the capacitive summing node, with its corner ~5 decades below the probe
//! band.
//!
//! The single-ended two-stage Miller template is non-inverting from gate to
//! output, so its core models the differential OTA's inverting input with
//! an ideal −1 VCVS at the gate (the differential-pair sign choice, free of
//! power or loading cost at this abstraction); the telescopic core is
//! already inverting and connects its gate directly.

use crate::opamp::{TelescopicParams, TwoStageParams};
use crate::power::StageDesign;
use adc_spice::netlist::{Circuit, ClockPhase, NodeId};
use adc_spice::process::Process;
use adc_spice::subckt::{Instance, Subckt};
use adc_spice::tran::Clock;
use adc_spice::waveform::Waveform;
use adc_spice::SpiceResult;

/// Maps a nominal phase onto a stage's schedule: odd pipeline stages swap
/// φ1↔φ2 so stage `k+1` samples while stage `k` amplifies.
fn sched(phase: ClockPhase, swap: bool) -> ClockPhase {
    if !swap {
        return phase;
    }
    match phase {
        ClockPhase::Phi1 => ClockPhase::Phi2,
        ClockPhase::Phi2 => ClockPhase::Phi1,
    }
}

/// Servo loop gain of the per-stage output-bias servo (matches the OTA
/// testbenches).
const SERVO_GAIN: f64 = 200.0;

/// Bias-injection resistance into the capacitive summing node, Ω. Large
/// enough that the injection corner (with picofarad summing nodes) sits
/// orders of magnitude below the probe band, small enough that the DC
/// Jacobian's dynamic range stays within what the voltage-update tolerance
/// can resolve (a 10 GΩ injection was found to stall Newton at the
/// rounding floor on telescopic stages).
const R_BIAS: f64 = 1e8;

/// Off-resistance of every clocked switch, Ω.
const R_OFF: f64 = 1e12;

/// One synthesized (or nominal) OTA sizing, tagged by template — the
/// circuit-level payload a cached synthesis block hands the chain
/// testbench.
#[derive(Debug, Clone, PartialEq)]
pub enum OtaSizing {
    /// Telescopic-cascode sizing.
    Telescopic(TelescopicParams),
    /// Two-stage Miller sizing.
    TwoStage(TwoStageParams),
}

impl OtaSizing {
    /// Builds the bare amplifier core subcircuit for this sizing.
    pub fn build_core(&self, process: &Process) -> Subckt {
        match self {
            OtaSizing::Telescopic(p) => build_telescopic_core(process, p),
            OtaSizing::TwoStage(p) => build_two_stage_core(process, p),
        }
    }

    /// Local MOSFET names of the core (saturation checks).
    pub fn device_names(&self) -> [&'static str; 4] {
        ["M1", "M2", "M3", "M4"]
    }
}

/// Builds the telescopic-cascode amplifier **core** as a subcircuit with
/// ports `in` (gate), `out` and `vdd` — the amplifier of
/// [`crate::opamp::build_telescopic`] without its testbench harness
/// (supply, load, servo, stimulus), ready for hierarchical instantiation.
/// Inverting from `in` to `out`.
pub fn build_telescopic_core(process: &Process, p: &TelescopicParams) -> Subckt {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("in");
    let nc = ckt.node("ncasc");
    let out = ckt.node("out");
    let np = ckt.node("npcasc");
    let vbn = ckt.node("vbn");
    let vbp1 = ckt.node("vbp1");
    let vbp2 = ckt.node("vbp2");

    ckt.add_vsource("VBN", vbn, Circuit::GROUND, p.vbn);
    ckt.add_vsource("VBP1", vbp1, Circuit::GROUND, p.vbp1);
    ckt.add_vsource("VBP2", vbp2, Circuit::GROUND, p.vbp2);
    ckt.add_mosfet(
        "M1",
        nc,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        process.nmos,
        p.w_in,
        p.l_in,
    );
    ckt.add_mosfet(
        "M2",
        out,
        vbn,
        nc,
        Circuit::GROUND,
        process.nmos,
        p.w_casc,
        p.l_in,
    );
    ckt.add_mosfet("M3", out, vbp1, np, vdd, process.pmos, p.w_pcasc, p.l_p);
    ckt.add_mosfet("M4", np, vbp2, vdd, vdd, process.pmos, p.w_psrc, p.l_p);
    Subckt::new(
        "ota_tele",
        ckt,
        &[("in", "in"), ("out", "out"), ("vdd", "vdd")],
    )
    .expect("telescopic core ports")
}

/// Builds the two-stage Miller amplifier **core** as a subcircuit with
/// ports `in`, `out` and `vdd`. The single-ended template is non-inverting
/// gate→out; the differential OTA's inverting input is modeled by an ideal
/// −1 VCVS at the gate, so the core is **inverting** from `in` to `out`
/// like the telescopic one — the polarity the capacitive feedback network
/// requires.
pub fn build_two_stage_core(process: &Process, p: &TwoStageParams) -> Subckt {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let g = ckt.node("g");
    let ref2 = ckt.node("ref2");
    let n1 = ckt.node("n1");
    let out = ckt.node("out");
    let cz = ckt.node("cz");
    let vbp = ckt.node("vbp");
    let vbn2 = ckt.node("vbn2");

    // Ideal inverting input: v(g) = v(ref2) − v(in); ref2 centers the gate
    // bias range, the stage servo absorbs the exact level.
    ckt.add_vsource("VR2", ref2, Circuit::GROUND, process.vdd / 2.0);
    ckt.add_vcvs("EINV", g, Circuit::GROUND, ref2, inp, 1.0);
    ckt.add_vsource("VBP", vbp, Circuit::GROUND, p.vbp);
    ckt.add_vsource("VBN2", vbn2, Circuit::GROUND, p.vbn2);
    ckt.add_mosfet(
        "M1",
        n1,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        process.nmos,
        p.w1,
        p.l1,
    );
    ckt.add_mosfet("M2", n1, vbp, vdd, vdd, process.pmos, p.w2, p.l1);
    ckt.add_mosfet("M3", out, n1, vdd, vdd, process.pmos, p.w3, p.l2);
    ckt.add_mosfet(
        "M4",
        out,
        vbn2,
        Circuit::GROUND,
        Circuit::GROUND,
        process.nmos,
        p.w4,
        p.l2,
    );
    ckt.add_capacitor("CC", n1, cz, p.cc);
    ckt.add_resistor("RZ", cz, out, p.rz);
    Subckt::new(
        "ota_2st",
        ckt,
        &[("in", "in"), ("out", "out"), ("vdd", "vdd")],
    )
    .expect("two-stage core ports")
}

/// Circuit-level configuration of one MDAC stage subcircuit.
#[derive(Debug, Clone, PartialEq)]
pub struct MdacStageConfig {
    /// Raw stage resolution `m` (gain `G = 2^{m−1}`, `G` unit caps).
    pub bits: u32,
    /// Unit (= feedback) capacitance, F; the sampling array totals
    /// `G·c_f`.
    pub c_f: f64,
    /// OTA core sizing.
    pub ota: OtaSizing,
    /// Switch on-resistance, Ω.
    pub ron: f64,
}

impl MdacStageConfig {
    /// Interstage gain `G = 2^{m−1}` (also the unit-capacitor count).
    pub fn gain_units(&self) -> u32 {
        1 << (self.bits - 1)
    }

    /// Derives the stage configuration from an analytic stage design plus
    /// an OTA sizing (nominal or synthesized).
    pub fn from_design(design: &StageDesign, ota: OtaSizing) -> Self {
        MdacStageConfig {
            bits: design.spec.bits,
            c_f: design.caps.c_f,
            ota,
            ron: 100.0,
        }
    }
}

/// Builds one MDAC stage as a subcircuit with ports `in`, `out`, `vdd` and
/// `vref`: the flip-around capacitor array (`G` sampling units with φ1
/// sampling and φ2 reference switches, one feedback unit through the φ2
/// switch), the OTA core as a **nested instance** under `ota.`, and the
/// output-bias servo. Equivalent to [`build_mdac_stage_phased`] with
/// `swap_phases = false`.
pub fn build_mdac_stage(process: &Process, cfg: &MdacStageConfig) -> SpiceResult<Subckt> {
    build_mdac_stage_phased(process, cfg, false)
}

/// [`build_mdac_stage`] with an explicit clock schedule: `swap_phases`
/// exchanges φ1↔φ2 on every switch so odd pipeline stages sample while
/// even ones amplify.
///
/// Besides the signal-path switches the stage carries two **reset**
/// switches that only matter under transient clocking (both are open in
/// the DC/AC configuration, so small-signal results are unchanged):
///
/// - `SR` grounds the feedback-cap bottom plate to `vref` during the
///   sampling phase. Without it the φ2-only feedback network leaves `CF`
///   floating across the sampling phase and the stage integrates residue
///   charge across clock periods instead of amplifying each sample.
/// - `SZ` diode-connects the OTA (`out`→`sum`) during the sampling phase.
///   With the feedback loop open in φ1 the OTA would otherwise slew
///   open-loop to a rail and have to recover every amplification phase;
///   the unity reset holds it at its self-bias point, matching the
///   charge-conservation analysis: `v_out = vref + G·(v_in − vref)` at the
///   end of the amplification phase.
pub fn build_mdac_stage_phased(
    process: &Process,
    cfg: &MdacStageConfig,
    swap_phases: bool,
) -> SpiceResult<Subckt> {
    let g_units = cfg.gain_units();
    let sample = sched(ClockPhase::Phi1, swap_phases);
    let amplify = sched(ClockPhase::Phi2, swap_phases);
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    let vdd = ckt.node("vdd");
    let vref = ckt.node("vref");
    let sum = ckt.node("sum");
    let fb = ckt.node("fb");

    // Sampling/DAC unit array: bottom plates u{k}, tops on the summing
    // node. The sampling switch conducts in DC (the analyzed signal path),
    // the amplification-phase reference switch models the DAC connection.
    for k in 1..=g_units {
        let u = ckt.node(&format!("u{k}"));
        ckt.add_switch(&format!("SS{k}"), inp, u, cfg.ron, R_OFF, sample, true);
        ckt.add_switch(&format!("SD{k}"), u, vref, cfg.ron, R_OFF, amplify, false);
        ckt.add_capacitor(&format!("CU{k}"), u, sum, cfg.c_f);
    }
    // Feedback unit through the amplification-phase switch, with the
    // sampling-phase reset switches described above.
    ckt.add_capacitor("CF", sum, fb, cfg.c_f);
    ckt.add_switch("SF", fb, out, cfg.ron, R_OFF, amplify, true);
    ckt.add_switch("SR", fb, vref, cfg.ron, R_OFF, sample, false);
    ckt.add_switch("SZ", out, sum, cfg.ron, R_OFF, sample, false);

    // OTA core, nested.
    let core = cfg.ota.build_core(process);
    ckt.instantiate(&core, "ota", &[("in", sum), ("out", out), ("vdd", vdd)])?;

    // Output-bias servo injecting into the summing node (the stage is
    // inverting sum→out, so the servo senses out−target).
    let vt = ckt.node("vt");
    let lp = ckt.node("lp");
    let vb = ckt.node("vb");
    ckt.add_vsource("VTGT", vt, Circuit::GROUND, process.vdd / 2.0);
    ckt.add_resistor("RLP", out, lp, 1e6);
    ckt.add_capacitor("CLP", lp, Circuit::GROUND, 1e-3);
    ckt.add_vcvs("ESRV", vb, Circuit::GROUND, lp, vt, SERVO_GAIN);
    ckt.add_resistor("RBIAS", vb, sum, R_BIAS);

    Subckt::new(
        "mdac_stage",
        ckt,
        &[
            ("in", "in"),
            ("out", "out"),
            ("vdd", "vdd"),
            ("vref", "vref"),
        ],
    )
}

/// Builds an `m`-bit flash sub-ADC loading model as a subcircuit with
/// ports `in` and `vref`: a `2^m`-segment resistive reference ladder and
/// `2^m − 2` comparator inputs, each a sampling switch into an input
/// capacitor against its ladder tap — the capacitive load the paper's
/// `c_next` bookkeeping charges the previous stage for.
pub fn build_sub_adc(bits: u32, c_cmp: f64, r_ladder_total: f64, ron: f64) -> SpiceResult<Subckt> {
    build_sub_adc_phased(bits, c_cmp, r_ladder_total, ron, false)
}

/// [`build_sub_adc`] with an explicit clock schedule: `swap_phases` moves
/// the comparator sampling switches to φ2, matching a stage whose own
/// schedule is swapped (the bank samples alongside its stage).
pub fn build_sub_adc_phased(
    bits: u32,
    c_cmp: f64,
    r_ladder_total: f64,
    ron: f64,
    swap_phases: bool,
) -> SpiceResult<Subckt> {
    let sample = sched(ClockPhase::Phi1, swap_phases);
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let vref = ckt.node("vref");
    let segments = 1usize << bits;
    let r_unit = r_ladder_total / segments as f64;
    let mut upper = vref;
    for k in 1..segments {
        let tap = ckt.node(&format!("t{k}"));
        ckt.add_resistor(&format!("RL{k}"), upper, tap, r_unit);
        upper = tap;
    }
    ckt.add_resistor(&format!("RL{segments}"), upper, Circuit::GROUND, r_unit);
    for k in 1..=(segments - 2) {
        let c = ckt.node(&format!("c{k}"));
        let tap = ckt.find_node(&format!("t{k}")).expect("tap interned above");
        ckt.add_switch(&format!("SC{k}"), inp, c, ron, R_OFF, sample, true);
        ckt.add_capacitor(&format!("CC{k}"), c, tap, c_cmp);
    }
    Subckt::new("sub_adc", ckt, &[("in", "in"), ("vref", "vref")])
}

/// Options of the chain testbench builder.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOptions {
    /// Attach each stage's sub-ADC bank (comparator loading + reference
    /// ladder) and the backend's 1.5-bit bank.
    pub with_sub_adc: bool,
    /// Backend sampling capacitance loading the last front-end stage, F.
    pub backend_c_load: f64,
    /// Per-comparator input capacitance, F.
    pub c_cmp: f64,
    /// Total reference-ladder resistance per sub-ADC, Ω.
    pub ladder_r_total: f64,
    /// Sub-ADC sampling-switch on-resistance, Ω.
    pub ron: f64,
    /// Cut every inter-stage connection: each stage k > 0 is driven by its
    /// own AC source instead of the previous output, and every stage output
    /// carries the backend load — the configuration the
    /// chain-vs-standalone property test compares against.
    pub decouple: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            with_sub_adc: true,
            backend_c_load: 80e-15,
            c_cmp: 10.59e-15,
            ladder_r_total: 10e3,
            ron: 100.0,
            decouple: false,
        }
    }
}

/// A flattened multi-stage MDAC chain testbench, ready for the existing
/// DC/TF workspaces.
#[derive(Debug, Clone)]
pub struct PipelineTestbench {
    /// The flattened netlist.
    pub circuit: Circuit,
    /// AC-driven input source name.
    pub input_source: String,
    /// Last stage's output node (end-to-end TF target).
    pub output: NodeId,
    /// Shared supply source name (chain power).
    pub supply: String,
    /// Flattened OTA MOSFET names across all stages (saturation checks).
    pub devices: Vec<String>,
    /// Per-stage instance handles (retuning through instance paths).
    pub stages: Vec<Instance>,
    /// Per-stage output nodes.
    pub stage_outputs: Vec<NodeId>,
    /// Ideal end-to-end gain magnitude `∏ 2^{mᵢ−1}`.
    pub expected_gain: f64,
    /// Mid-rail level every stage output servos to, V.
    pub mid_rail: f64,
}

impl PipelineTestbench {
    /// MNA system dimension of the flattened chain.
    pub fn mna_dim(&self) -> usize {
        self.circuit.mna_dim()
    }

    /// SPICE-style `.nodeset` initial guesses for the chain's DC solve:
    /// stage outputs and servo sense nodes at mid-rail, summing nodes near
    /// the input-device bias. Without these, the damped Newton iteration
    /// must walk each servo node back from the ~`SERVO_GAIN·V_target`
    /// excursion a zero start implies, hundreds of iterations at the
    /// per-step voltage cap.
    pub fn nodeset(&self) -> std::collections::HashMap<String, f64> {
        let mut set = std::collections::HashMap::new();
        // Pin the rails so the very first Jacobian sees devices in a
        // realistic bias state — from an all-zero start every MOSFET is
        // hard off and the sparse engine's static pivots can land on
        // numerically vanished companion entries.
        set.insert("vdd".to_string(), 2.0 * self.mid_rail);
        set.insert("vref".to_string(), self.mid_rail);
        for (inst, &out) in self.stages.iter().zip(self.stage_outputs.iter()) {
            set.insert(self.circuit.node_name(out).to_string(), self.mid_rail);
            // `vt` and `lp` must start consistent (both at the target):
            // any difference between them is amplified `SERVO_GAIN`-fold
            // into the servo output's required step, and the global damping
            // cap then stalls the whole iteration while `vb` chases it.
            for (local, v) in [
                ("vt", self.mid_rail),
                ("lp", self.mid_rail),
                ("vb", 0.0),
                ("sum", 0.8),
            ] {
                if let Some(n) = inst.node(local) {
                    set.insert(self.circuit.node_name(n).to_string(), v);
                }
            }
        }
        set
    }

    /// Default DC options with the chain's [`PipelineTestbench::nodeset`]
    /// applied.
    pub fn dc_options(&self) -> adc_spice::dc::DcOptions {
        adc_spice::dc::DcOptions {
            nodeset: self.nodeset(),
            // Per-node limiting: the chain couples many servo loops whose
            // wound-up outputs would starve a globally scaled update.
            damping: adc_spice::dc::DcDamping::PerNode,
            ..Default::default()
        }
    }

    /// Phase during which stage `k` samples its input (φ1/φ2 alternate
    /// down the chain: stage `k+1` samples while stage `k` amplifies, so
    /// residues hand off every half period).
    pub fn stage_sample_phase(&self, k: usize) -> ClockPhase {
        sched(ClockPhase::Phi1, k % 2 == 1)
    }

    /// Phase during which stage `k` amplifies — its output is valid at the
    /// end of this phase.
    pub fn stage_amplify_phase(&self, k: usize) -> ClockPhase {
        sched(ClockPhase::Phi2, k % 2 == 1)
    }

    /// Time window of stage `k`'s amplification phase within clock period
    /// `period_index` — the probe window for settling sign-off.
    pub fn stage_probe_window(&self, clock: &Clock, period_index: usize, k: usize) -> (f64, f64) {
        clock.phase_window(period_index, self.stage_amplify_phase(k))
    }

    /// Replaces the input drive with a DC hold at `volts`: clocked
    /// transient runs drive the chain with a held level and let the φ1
    /// switches do the sampling. The AC magnitude is preserved, so
    /// small-signal sweeps through the same testbench stay valid.
    pub fn set_input_hold(&mut self, volts: f64) {
        let (id, _) = self
            .circuit
            .find_element(&self.input_source)
            .expect("input source exists");
        self.circuit.set_waveform(id, Waveform::Dc(volts));
    }

    /// Retunes stage `k`'s OTA sizing in place through the instance path
    /// (`s{k}.ota.*`), preserving the topology so bound workspaces stay
    /// valid.
    ///
    /// # Panics
    /// Panics if `k` is out of range or the sizing's template does not
    /// match the stage's.
    pub fn retune_stage_ota(&mut self, k: usize, sizing: &OtaSizing) {
        let inst = &self.stages[k];
        let ckt = &mut self.circuit;
        match sizing {
            OtaSizing::Telescopic(p) => {
                inst.set_value(ckt, "ota.VBN", p.vbn);
                inst.set_value(ckt, "ota.VBP1", p.vbp1);
                inst.set_value(ckt, "ota.VBP2", p.vbp2);
                inst.set_device_geometry(ckt, "ota.M1", p.w_in, p.l_in);
                inst.set_device_geometry(ckt, "ota.M2", p.w_casc, p.l_in);
                inst.set_device_geometry(ckt, "ota.M3", p.w_pcasc, p.l_p);
                inst.set_device_geometry(ckt, "ota.M4", p.w_psrc, p.l_p);
            }
            OtaSizing::TwoStage(p) => {
                inst.set_value(ckt, "ota.VBP", p.vbp);
                inst.set_value(ckt, "ota.VBN2", p.vbn2);
                inst.set_device_geometry(ckt, "ota.M1", p.w1, p.l1);
                inst.set_device_geometry(ckt, "ota.M2", p.w2, p.l1);
                inst.set_device_geometry(ckt, "ota.M3", p.w3, p.l2);
                inst.set_device_geometry(ckt, "ota.M4", p.w4, p.l2);
                inst.set_value(ckt, "ota.CC", p.cc);
                inst.set_value(ckt, "ota.RZ", p.rz);
            }
        }
    }
}

/// Chains the given stage configurations into a full-pipeline testbench:
/// one shared supply and reference, each stage's sampling array and sub-ADC
/// bank loading the previous output, and the backend load on the last
/// stage.
///
/// # Errors
/// Propagates [`adc_spice::SpiceError`] from subcircuit construction.
pub fn build_pipeline(
    process: &Process,
    stages: &[MdacStageConfig],
    opts: &PipelineOptions,
) -> SpiceResult<PipelineTestbench> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vref = ckt.node("vref");
    let inp = ckt.node("in");
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, process.vdd);
    ckt.add_vsource("VREF", vref, Circuit::GROUND, process.vdd / 2.0);
    ckt.add_vsource_wave("VIN", inp, Circuit::GROUND, 0.0.into(), 1.0);

    let mut instances = Vec::with_capacity(stages.len());
    let mut stage_outputs = Vec::with_capacity(stages.len());
    let mut devices = Vec::new();
    let mut expected_gain = 1.0;
    let mut prev = inp;
    for (k, cfg) in stages.iter().enumerate() {
        let stage_in = if opts.decouple && k > 0 {
            let dec = ckt.node(&format!("dec{k}"));
            ckt.add_vsource_wave(&format!("VIN{k}"), dec, Circuit::GROUND, 0.0.into(), 1.0);
            dec
        } else {
            prev
        };
        // Odd stages run on the swapped schedule so each stage samples
        // while its predecessor amplifies; each sub-ADC bank samples
        // alongside its stage.
        let swap = k % 2 == 1;
        if opts.with_sub_adc {
            let bank =
                build_sub_adc_phased(cfg.bits, opts.c_cmp, opts.ladder_r_total, opts.ron, swap)?;
            ckt.instantiate(
                &bank,
                &format!("adc{k}"),
                &[("in", stage_in), ("vref", vref)],
            )?;
        }
        let out = ckt.node(&format!("o{k}"));
        let sub = build_mdac_stage_phased(process, cfg, swap)?;
        let inst = ckt.instantiate(
            &sub,
            &format!("s{k}"),
            &[("in", stage_in), ("out", out), ("vdd", vdd), ("vref", vref)],
        )?;
        for d in cfg.ota.device_names() {
            devices.push(format!("{}.ota.{d}", inst.prefix()));
        }
        if opts.decouple {
            // Decoupled stages each carry the backend load so every stage
            // matches a standalone single-stage bench element for element.
            ckt.add_capacitor(
                &format!("CBACK{k}"),
                out,
                Circuit::GROUND,
                opts.backend_c_load,
            );
        }
        expected_gain *= cfg.gain_units() as f64;
        instances.push(inst);
        stage_outputs.push(out);
        prev = out;
    }
    if !opts.decouple {
        ckt.add_capacitor("CBACK", prev, Circuit::GROUND, opts.backend_c_load);
    }
    if opts.with_sub_adc {
        // Backend 1.5-bit tail stage's bank samples the last residue on the
        // schedule a hypothetical stage N would use.
        let bank = build_sub_adc_phased(
            2,
            opts.c_cmp,
            opts.ladder_r_total,
            opts.ron,
            stages.len() % 2 == 1,
        )?;
        ckt.instantiate(&bank, "adcb", &[("in", prev), ("vref", vref)])?;
    }
    Ok(PipelineTestbench {
        circuit: ckt,
        input_source: "VIN".to_string(),
        output: prev,
        supply: "VDD".to_string(),
        devices,
        stages: instances,
        stage_outputs,
        expected_gain,
        mid_rail: process.vdd / 2.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_sfg::nettf::{extract_tf, NetTfOptions};
    use adc_spice::dc::dc_operating_point;

    fn tele_cfg(bits: u32, c_f: f64) -> MdacStageConfig {
        MdacStageConfig {
            bits,
            c_f,
            ota: OtaSizing::Telescopic(TelescopicParams::nominal()),
            ron: 100.0,
        }
    }

    #[test]
    fn stage_closed_loop_gain_approaches_ideal() {
        let proc = Process::c025();
        for bits in [2u32, 3] {
            let tb = build_pipeline(
                &proc,
                &[tele_cfg(bits, 200e-15)],
                &PipelineOptions {
                    with_sub_adc: false,
                    ..Default::default()
                },
            )
            .unwrap();
            let op = dc_operating_point(&tb.circuit, &tb.dc_options()).unwrap();
            // Output servos to mid-rail.
            let vout = op.voltage(tb.output);
            assert!((vout - 1.65).abs() < 0.3, "m={bits}: vout {vout}");
            let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
                .unwrap()
                .cancel_common_roots(1e-5);
            let g = tf.magnitude(1e6);
            let ideal = (1u32 << (bits - 1)) as f64;
            assert!(
                (g - ideal).abs() / ideal < 0.05,
                "m={bits}: closed-loop gain {g} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn two_stage_core_is_inverting_and_biases() {
        let proc = Process::c025();
        let cfg = MdacStageConfig {
            bits: 4,
            c_f: 550e-15,
            ota: OtaSizing::TwoStage(TwoStageParams::nominal()),
            ron: 100.0,
        };
        let tb = build_pipeline(
            &proc,
            &[cfg],
            &PipelineOptions {
                with_sub_adc: false,
                ..Default::default()
            },
        )
        .unwrap();
        let op = dc_operating_point(&tb.circuit, &tb.dc_options()).unwrap();
        let vout = op.voltage(tb.output);
        assert!((vout - 1.65).abs() < 0.35, "vout {vout}");
        let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
            .unwrap()
            .cancel_common_roots(1e-5);
        let g = tf.magnitude(1e6);
        assert!((g - 8.0).abs() / 8.0 < 0.05, "closed-loop gain {g} vs 8");
    }

    #[test]
    fn chain_couples_stages_and_counts_unknowns() {
        let proc = Process::c025();
        let stages = [tele_cfg(3, 400e-15), tele_cfg(2, 200e-15)];
        let tb = build_pipeline(&proc, &stages, &PipelineOptions::default()).unwrap();
        assert_eq!(tb.stages.len(), 2);
        assert_eq!(tb.expected_gain, 8.0);
        assert_eq!(tb.devices.len(), 8);
        // Sub-ADC banks and cap arrays push the dimension well past a
        // single OTA testbench.
        assert!(tb.mna_dim() > 50, "dim {}", tb.mna_dim());
        // The chain solves DC and both stage outputs servo to mid-rail.
        let op = dc_operating_point(&tb.circuit, &tb.dc_options()).unwrap();
        for &o in &tb.stage_outputs {
            let v = op.voltage(o);
            assert!((v - 1.65).abs() < 0.3, "stage out {v}");
        }
        // End-to-end gain within a few percent of ∏G (finite loop gain).
        let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
            .unwrap()
            .cancel_common_roots(1e-5);
        let g = tf.magnitude(1e6);
        assert!((g - 8.0).abs() / 8.0 < 0.08, "chain gain {g} vs expected 8");
    }

    #[test]
    fn retune_through_instance_paths_matches_rebuild() {
        let proc = Process::c025();
        let mut p = TelescopicParams::nominal();
        let mut tb = build_pipeline(
            &proc,
            &[MdacStageConfig {
                bits: 2,
                c_f: 200e-15,
                ota: OtaSizing::Telescopic(p.clone()),
                ron: 100.0,
            }],
            &PipelineOptions::default(),
        )
        .unwrap();
        p.w_in = 90e-6;
        p.vbn = 1.2;
        tb.retune_stage_ota(0, &OtaSizing::Telescopic(p.clone()));
        let fresh = build_pipeline(
            &proc,
            &[MdacStageConfig {
                bits: 2,
                c_f: 200e-15,
                ota: OtaSizing::Telescopic(p),
                ron: 100.0,
            }],
            &PipelineOptions::default(),
        )
        .unwrap();
        assert_eq!(tb.circuit.elements(), fresh.circuit.elements());
        assert_eq!(
            tb.circuit.topology_fingerprint(),
            fresh.circuit.topology_fingerprint()
        );
    }

    fn switch_phase(ckt: &Circuit, name: &str) -> ClockPhase {
        ckt.elements()
            .iter()
            .find_map(|e| match e {
                adc_spice::netlist::Element::Switch { name: n, phase, .. } if n == name => {
                    Some(*phase)
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("no switch {name}"))
    }

    #[test]
    fn phased_stage_swaps_schedule_and_adds_resets() {
        let proc = Process::c025();
        let cfg = tele_cfg(3, 200e-15);
        let base = build_mdac_stage_phased(&proc, &cfg, false).unwrap();
        let swapped = build_mdac_stage_phased(&proc, &cfg, true).unwrap();
        for (name, nominal) in [
            ("SS1", ClockPhase::Phi1),
            ("SD1", ClockPhase::Phi2),
            ("SF", ClockPhase::Phi2),
            ("SR", ClockPhase::Phi1),
            ("SZ", ClockPhase::Phi1),
        ] {
            assert_eq!(switch_phase(base.circuit(), name), nominal, "{name}");
            assert_eq!(
                switch_phase(swapped.circuit(), name),
                sched(nominal, true),
                "{name} swapped"
            );
        }
        // The reset switches are open in the DC configuration, so the
        // small-signal path is unchanged by their presence.
        let bank = build_sub_adc_phased(3, 10e-15, 10e3, 100.0, true).unwrap();
        assert_eq!(switch_phase(bank.circuit(), "SC1"), ClockPhase::Phi2);
    }

    #[test]
    fn pipeline_alternates_phases_and_holds_input() {
        let proc = Process::c025();
        let stages = [tele_cfg(3, 400e-15), tele_cfg(2, 200e-15)];
        let mut tb = build_pipeline(&proc, &stages, &PipelineOptions::default()).unwrap();
        assert_eq!(tb.stage_sample_phase(0), ClockPhase::Phi1);
        assert_eq!(tb.stage_amplify_phase(0), ClockPhase::Phi2);
        assert_eq!(tb.stage_sample_phase(1), ClockPhase::Phi2);
        assert_eq!(tb.stage_amplify_phase(1), ClockPhase::Phi1);
        // The flattened netlist carries the alternation: stage 1 samples on
        // φ2, and its sub-ADC bank samples alongside it.
        assert_eq!(switch_phase(&tb.circuit, "s0.SS1"), ClockPhase::Phi1);
        assert_eq!(switch_phase(&tb.circuit, "s1.SS1"), ClockPhase::Phi2);
        assert_eq!(switch_phase(&tb.circuit, "adc0.SC1"), ClockPhase::Phi1);
        assert_eq!(switch_phase(&tb.circuit, "adc1.SC1"), ClockPhase::Phi2);
        assert_eq!(switch_phase(&tb.circuit, "adcb.SC1"), ClockPhase::Phi1);
        // Probe windows hand off: stage 0's amplification window ends
        // before stage 1's (next period) begins.
        let clk = Clock {
            freq: 40e6,
            nonoverlap: 1e-9,
        };
        let (a0, b0) = tb.stage_probe_window(&clk, 0, 0);
        let (a1, b1) = tb.stage_probe_window(&clk, 1, 1);
        assert!(a0 < b0 && b0 <= a1 && a1 < b1);
        // Input hold replaces the drive waveform but keeps the AC
        // magnitude, so the same testbench still sweeps.
        tb.set_input_hold(1.7);
        let (_, e) = tb.circuit.find_element("VIN").unwrap();
        match e {
            adc_spice::netlist::Element::VSource { wave, ac_mag, .. } => {
                assert_eq!(*wave, Waveform::Dc(1.7));
                assert_eq!(*ac_mag, 1.0);
            }
            _ => panic!("VIN is not a source"),
        }
    }

    #[test]
    fn sub_adc_structure() {
        let bank = build_sub_adc(3, 10e-15, 10e3, 100.0).unwrap();
        // 8 ladder resistors, 6 comparators (switch + cap each).
        let c = bank.circuit();
        assert_eq!(
            c.elements()
                .iter()
                .filter(|e| e.name().starts_with("RL"))
                .count(),
            8
        );
        assert_eq!(
            c.elements()
                .iter()
                .filter(|e| e.name().starts_with("CC"))
                .count(),
            6
        );
    }
}
