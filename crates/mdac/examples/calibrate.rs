//! Calibration search for PowerModelParams (temporary tool).
use adc_mdac::power::{chain_power, PowerModelParams};
use adc_mdac::specs::AdcSpec;

fn candidates(k: u32) -> Vec<Vec<u32>> {
    let total = (k - 7) as i32;
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(rem: i32, maxp: i32, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if rem == 0 {
            out.push(cur.iter().map(|&p| p + 1).collect());
            return;
        }
        for p in (1..=maxp.min(rem)).rev() {
            cur.push(p as u32);
            rec(rem - p, p, cur, out);
            cur.pop();
        }
    }
    rec(total, 3, &mut cur, &mut out);
    out
}

/// Returns (n_targets_hit, min_margin_over_hit, stage1_spread)
fn score(p: &PowerModelParams) -> (usize, f64, f64) {
    let targets: [(u32, &[u32]); 4] = [
        (10, &[3, 2]),
        (11, &[4, 2]),
        (12, &[4, 2, 2]),
        (13, &[4, 3, 2]),
    ];
    let mut hits = 0;
    let mut margin_min = f64::INFINITY;
    for (k, want) in targets {
        let spec = AdcSpec::date05(k);
        let mut rows: Vec<(Vec<u32>, f64)> = candidates(k)
            .into_iter()
            .map(|c| {
                let pw = chain_power(&spec, &c, p);
                (c, pw)
            })
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        if rows[0].0 == want {
            hits += 1;
            margin_min = margin_min.min((rows[1].1 - rows[0].1) / rows[0].1);
        }
    }
    let spec = AdcSpec::date05(13);
    let p1: Vec<f64> = [vec![2u32, 2, 2, 2, 2, 2], vec![3, 3, 3], vec![4, 3, 2]]
        .iter()
        .map(|c| adc_mdac::power::design_chain(&spec, c, p)[0].power_total)
        .collect();
    let spread =
        p1.iter().cloned().fold(f64::MIN, f64::max) / p1.iter().cloned().fold(f64::MAX, f64::min);
    (hits, margin_min, spread)
}

fn report(p: &PowerModelParams) {
    for k in [10u32, 11, 12, 13] {
        let spec = AdcSpec::date05(k);
        let mut rows: Vec<(Vec<u32>, f64)> = candidates(k)
            .into_iter()
            .map(|c| {
                let pw = chain_power(&spec, &c, p);
                (c, pw)
            })
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        println!("K={k}:");
        for (c, pw) in &rows {
            println!("  {:?} {:.3} mW", c, pw * 1e3);
        }
    }
    let spec = AdcSpec::date05(13);
    let p1: Vec<f64> = [vec![2u32, 2, 2, 2, 2, 2], vec![3, 3, 3], vec![4, 3, 2]]
        .iter()
        .map(|c| adc_mdac::power::design_chain(&spec, c, p)[0].power_total)
        .collect();
    println!(
        "stage1 power m1=2/3/4: {:.3} {:.3} {:.3} mW",
        p1[0] * 1e3,
        p1[1] * 1e3,
        p1[2] * 1e3
    );
}

fn main() {
    let base = PowerModelParams::calibrated();
    let (h, m, s) = score(&base);
    println!("current: hits={h}/4 margin={m:.4} spread={s:.3}");

    report(&base);
}
