//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate, covering the subset this workspace's tests use:
//! the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header), numeric
//! range strategies, [`collection::vec`], [`bool::ANY`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! The build environment has no access to crates.io, so this local crate
//! keeps the workspace hermetic. Unlike real proptest it does no input
//! shrinking: each test runs a fixed number of deterministic random cases
//! (seeded from the test name), and a failing case reports its inputs via
//! `Debug`. Swap this path dependency for the real crate when a registry
//! is available.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of cases when no `proptest_config` header is given.
pub const DEFAULT_CASES: u32 = 64;

/// Run-time configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Outcome of one generated case: pass, rejected assumption, or failure
/// message.
pub type CaseResult = Result<(), CaseError>;

/// Why a case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Rejected,
    /// `prop_assert!`-family failure.
    Failed(String),
}

/// Value generators (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Type of generated values.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// A strategy that always yields the same value (stand-in for
/// `proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between same-valued strategies — the backing store for
/// [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms (see [`arm`]).
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let total: u32 = self.arms.iter().map(|&(w, _)| w).sum();
        let mut pick = rand::Rng::gen_range(rng, 0..total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= *w;
        }
        unreachable!("weights sum to the sampled range")
    }
}

/// Boxes one weighted arm for [`Union::new`] (lets `prop_oneof!` erase
/// heterogeneous strategy types without naming them).
pub fn arm<S: Strategy + 'static>(w: u32, s: S) -> (u32, Box<dyn Strategy<Value = S::Value>>) {
    (w, Box::new(s))
}

/// Picks one of several strategies per draw (stand-in for
/// `proptest::prop_oneof!`); arms are `strategy` or `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::arm($w as u32, $s)),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::arm(1u32, $s)),+])
    };
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Uniform `true`/`false` (stand-in for `proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy generating `Vec`s of `element` values with lengths drawn
    /// from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports (stand-in for `proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a hash of the test path, used as the deterministic base seed so
/// each property gets an independent, reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: `cases` attempts, each sampling fresh inputs and
/// running `case`. Rejected assumptions don't count as executed cases (up
/// to a global attempt cap). Panics on the first failed case.
pub fn run_property(name: &str, cases: u32, mut case: impl FnMut(&mut StdRng) -> CaseResult) {
    let base = seed_for(name);
    let max_attempts = cases.saturating_mul(20).max(100);
    let mut executed = 0u32;
    for attempt in 0..max_attempts {
        if executed >= cases {
            return;
        }
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(attempt as u64));
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(CaseError::Rejected) => {}
            Err(CaseError::Failed(msg)) => {
                panic!("property '{name}' failed (attempt seed offset {attempt}): {msg}");
            }
        }
    }
    assert!(
        executed >= cases / 2,
        "property '{name}': too many rejected cases ({executed}/{cases} executed)"
    );
}

/// Defines property tests over sampled inputs; see crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    // Without a config header.
    (
        $(#[$first_meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@cases $crate::DEFAULT_CASES; $(#[$first_meta])* fn $($rest)*);
    };
    (@cases $cases:expr; ) => {};
    (@cases $cases:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                |__rng| -> $crate::CaseResult {
                    $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::proptest!(@cases $cases; $($rest)*);
    };
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::CaseError::Failed(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::CaseError::Failed(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::CaseError::Failed(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), va, vb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::CaseError::Failed(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), va, vb, format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err($crate::CaseError::Failed(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                va
            )));
        }
    }};
}

/// Rejects the current case (skipped, not failed) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::CaseError::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in -3.0f64..3.0, k in 2u32..=4) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((2..=4).contains(&k));
        }

        #[test]
        fn vec_strategy_len(v in crate::collection::vec(0.0f64..1.0, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_accepted(b in crate::bool::ANY) {
            let truth_value = b as u8;
            prop_assert!(truth_value <= 1);
        }
    }

    #[test]
    fn seed_is_stable_per_name() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
