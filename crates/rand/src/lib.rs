//! Offline stand-in for the [rand](https://crates.io/crates/rand) crate,
//! providing the 0.8-era subset this workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so this local crate
//! keeps the workspace hermetic. `StdRng` here is xoshiro256++ seeded via
//! SplitMix64 — a deterministic, high-quality non-cryptographic generator,
//! which is all the annealer, Monte Carlo sampler, and noise models need.
//! Swap this path dependency for the real crate when a registry is
//! available (seeded streams will differ).

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an `Rng` via [`Rng::gen`] (stand-in for
/// rand's `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait UniformSampled: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the inclusive range `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span / 2^64 -- negligible for the spans
                // this workspace draws (all far below 2^32).
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "gen_range: empty range");
                // span + 1 cannot overflow in u128, so `lo..=T::MAX` works.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi, "gen_range: empty range");
        // The exact upper endpoint has measure zero for lo < hi; what
        // matters is that degenerate `lo..=lo` ranges are valid.
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// User-facing extension trait (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: UniformSampled,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T: UniformSampled> {
    /// Uniform draw from this range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformSampled> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k = rng.gen_range(0..5usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..200 {
            let k = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&k));
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hit = [false; 3];
        for _ in 0..200 {
            hit[rng.gen_range(0u8..=2) as usize] = true;
        }
        assert_eq!(hit, [true; 3], "endpoints reachable: {hit:?}");
        // Degenerate and type-MAX inclusive ranges are valid.
        assert_eq!(rng.gen_range(5usize..=5), 5);
        assert_eq!(rng.gen_range(3.25f64..=3.25), 3.25);
        let big = rng.gen_range(u64::MAX - 1..=u64::MAX);
        assert!(big >= u64::MAX - 1);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
