//! The full pipelined converter: S/H, cascaded stages, backend flash, and
//! digital error correction (RSD recombination).

use crate::sha::ShaModel;
use crate::stage::{gaussian, StageModel};
use rand::Rng;

/// Backend flash quantizer (the final stage has no MDAC).
#[derive(Debug, Clone, PartialEq)]
pub struct FlashBackend {
    bits: u32,
    /// Per-threshold offsets, normalized (empty = ideal).
    offsets: Vec<f64>,
}

impl FlashBackend {
    /// Ideal backend flash of `bits` resolution.
    ///
    /// # Panics
    /// Panics unless `1 ≤ bits ≤ 10`.
    pub fn ideal(bits: u32) -> Self {
        FlashBackend::with_offsets(bits, Vec::new())
    }

    /// Backend flash with per-threshold offsets (length `2^bits − 1`).
    ///
    /// # Panics
    /// Panics on invalid resolution or offset count.
    pub fn with_offsets(bits: u32, offsets: Vec<f64>) -> Self {
        assert!((1..=10).contains(&bits), "flash bits must be 1..=10");
        let nt = (1usize << bits) - 1;
        assert!(
            offsets.is_empty() || offsets.len() == nt,
            "expected {nt} threshold offsets"
        );
        FlashBackend { bits, offsets }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of comparators `2^bits − 1`.
    pub fn comparator_count(&self) -> usize {
        (1usize << self.bits) - 1
    }

    /// Quantizes `v ∈ [−1, 1]` to a code in `0..2^bits`, returning the code
    /// and its mid-level reconstruction value.
    pub fn quantize(&self, v: f64) -> (u32, f64) {
        let n = 1u32 << self.bits;
        // Uniform mid-rise quantizer on [−1, 1]: thresholds at
        // −1 + 2k/n, k = 1..n−1.
        let mut code = 0u32;
        for k in 1..n {
            let mut t = -1.0 + 2.0 * k as f64 / n as f64;
            if let Some(&off) = self.offsets.get((k - 1) as usize) {
                t += off;
            }
            if v > t {
                code = k;
            }
        }
        let mid = -1.0 + (2.0 * code as f64 + 1.0) / n as f64;
        (code, mid)
    }
}

/// A complete behavioural pipelined ADC.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineAdc {
    sha: Option<ShaModel>,
    stages: Vec<StageModel>,
    backend: FlashBackend,
}

impl PipelineAdc {
    /// Builds an ideal pipeline from front-end stage resolutions (raw bits
    /// `mᵢ`, each contributing `mᵢ − 1` effective bits) plus a backend
    /// flash.
    ///
    /// # Panics
    /// Panics if any stage resolution is invalid (see [`StageModel`]).
    pub fn ideal(front_bits: &[u32], backend_bits: u32) -> Self {
        PipelineAdc {
            sha: None,
            stages: front_bits.iter().map(|&m| StageModel::ideal(m)).collect(),
            backend: FlashBackend::ideal(backend_bits),
        }
    }

    /// Builds a pipeline from explicit stage models.
    pub fn new(sha: Option<ShaModel>, stages: Vec<StageModel>, backend: FlashBackend) -> Self {
        PipelineAdc {
            sha,
            stages,
            backend,
        }
    }

    /// Front-end stages.
    pub fn stages(&self) -> &[StageModel] {
        &self.stages
    }

    /// Backend flash.
    pub fn backend(&self) -> &FlashBackend {
        &self.backend
    }

    /// Total effective resolution `Σ(mᵢ−1) + backend bits`.
    pub fn resolution_bits(&self) -> u32 {
        self.stages.iter().map(|s| s.effective_bits()).sum::<u32>() + self.backend.bits()
    }

    /// Total comparator count across sub-ADCs and backend.
    pub fn comparator_count(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.comparator_count())
            .sum::<usize>()
            + self.backend.comparator_count()
    }

    /// Converts one normalized sample, returning the digitally corrected
    /// analog estimate in `[−1, 1]`.
    ///
    /// Digital correction implements the RSD recursion
    /// `v̂ᵢ = (dᵢ + v̂ᵢ₊₁)/Gᵢ`, seeded by the backend's mid-level value.
    pub fn convert<R: Rng + ?Sized>(&self, vin: f64, rng: &mut R) -> f64 {
        let mut v = vin;
        if let Some(sha) = &self.sha {
            v = sha.sample(v, rng);
        }
        let mut digits = Vec::with_capacity(self.stages.len());
        for s in &self.stages {
            let (d, r) = s.process(v, rng);
            digits.push(d);
            v = r;
        }
        let (_, mut est) = self.backend.quantize(v);
        for (s, &d) in self.stages.iter().zip(digits.iter()).rev() {
            est = (d as f64 + est) / s.gain();
        }
        est
    }

    /// Converts one sample to the integer output code `0..2^K`.
    pub fn convert_code<R: Rng + ?Sized>(&self, vin: f64, rng: &mut R) -> u32 {
        let est = self.convert(vin, rng);
        let n = 1u64 << self.resolution_bits();
        let lsb = 2.0 / n as f64;
        let code = ((est + 1.0) / lsb).floor();
        code.clamp(0.0, (n - 1) as f64) as u32
    }

    /// Converts a waveform, returning analog estimates.
    pub fn convert_waveform<R: Rng + ?Sized>(&self, samples: &[f64], rng: &mut R) -> Vec<f64> {
        samples.iter().map(|&v| self.convert(v, rng)).collect()
    }

    /// Adds input-referred white noise of the given RMS before conversion —
    /// convenience for modeling source/reference noise.
    pub fn convert_waveform_noisy<R: Rng + ?Sized>(
        &self,
        samples: &[f64],
        input_noise_rms: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        samples
            .iter()
            .map(|&v| self.convert(v + input_noise_rms * gaussian(rng), rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageNonideality;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn resolution_accounting() {
        // 4-3-2 front-end + 7-bit backend = 3+2+1+7 = 13 bits.
        let adc = PipelineAdc::ideal(&[4, 3, 2], 7);
        assert_eq!(adc.resolution_bits(), 13);
        // Comparators: 14 + 6 + 2 + 127.
        assert_eq!(adc.comparator_count(), 14 + 6 + 2 + 127);
    }

    #[test]
    fn ideal_conversion_within_one_lsb() {
        let adc = PipelineAdc::ideal(&[3, 2], 4); // 2+1+4 = 7 bits
        let lsb = 2.0 / 128.0;
        let mut r = rng();
        for i in 0..500 {
            let v = -0.95 + 1.9 * i as f64 / 499.0;
            let est = adc.convert(v, &mut r);
            assert!((est - v).abs() <= lsb, "v={v} est={est}");
        }
    }

    #[test]
    fn codes_are_monotone_for_ideal_adc() {
        let adc = PipelineAdc::ideal(&[2, 2], 5);
        let mut r = rng();
        let mut last = 0u32;
        for i in 0..2000 {
            let v = -0.99 + 1.98 * i as f64 / 1999.0;
            let c = adc.convert_code(v, &mut r);
            assert!(c >= last, "non-monotone at v={v}: {c} < {last}");
            last = c;
        }
    }

    #[test]
    fn full_scale_codes() {
        let adc = PipelineAdc::ideal(&[2], 3); // 4 bits
        let mut r = rng();
        assert_eq!(adc.convert_code(-0.9999, &mut r), 0);
        assert_eq!(adc.convert_code(0.9999, &mut r), 15);
    }

    #[test]
    fn comparator_offsets_within_redundancy_are_corrected() {
        // m = 3 stage tolerates offsets < 1/2^3 = 0.125.
        let off: Vec<f64> = (0..6)
            .map(|i| if i % 2 == 0 { 0.08 } else { -0.08 })
            .collect();
        let stage = StageModel::with_nonideality(
            3,
            StageNonideality {
                comparator_offsets: off,
                ..Default::default()
            },
        );
        let ideal = PipelineAdc::ideal(&[3], 6);
        let off_adc = PipelineAdc::new(None, vec![stage], FlashBackend::ideal(6));
        let mut r1 = rng();
        let mut r2 = rng();
        for i in 0..1000 {
            let v = -0.9 + 1.8 * i as f64 / 999.0;
            let a = ideal.convert(v, &mut r1);
            let b = off_adc.convert(v, &mut r2);
            assert!((a - b).abs() < 2.0 / 64.0, "v={v}: {a} vs {b}");
        }
    }

    #[test]
    fn offsets_beyond_redundancy_corrupt() {
        // Offsets of 0.4 >> 0.25 for an m=2 stage: residue leaves the
        // backend range and codes saturate → large error somewhere.
        let stage = StageModel::with_nonideality(
            2,
            StageNonideality {
                comparator_offsets: vec![0.4, -0.4],
                ..Default::default()
            },
        );
        let adc = PipelineAdc::new(None, vec![stage], FlashBackend::ideal(6));
        let mut r = rng();
        let worst = (0..1000)
            .map(|i| {
                let v = -0.9 + 1.8 * i as f64 / 999.0;
                (adc.convert(v, &mut r) - v).abs()
            })
            .fold(0.0, f64::max);
        assert!(worst > 0.05, "expected gross errors, worst = {worst}");
    }

    #[test]
    fn backend_flash_quantizes_uniformly() {
        let f = FlashBackend::ideal(3);
        assert_eq!(f.comparator_count(), 7);
        let (c0, m0) = f.quantize(-1.0);
        assert_eq!(c0, 0);
        assert!((m0 + 0.875).abs() < 1e-12);
        let (c7, m7) = f.quantize(0.999);
        assert_eq!(c7, 7);
        assert!((m7 - 0.875).abs() < 1e-12);
        let (c, _) = f.quantize(0.0 + 1e-9);
        assert_eq!(c, 4);
    }

    #[test]
    fn deep_pipeline_2222_matches_43_2() {
        // Different topologies, same total resolution → same transfer
        // (ideal case): 2-2-2-2-2-2 + 7b vs 4-3-2 + 7b, both 13-bit.
        let a = PipelineAdc::ideal(&[2, 2, 2, 2, 2, 2], 7);
        let b = PipelineAdc::ideal(&[4, 3, 2], 7);
        assert_eq!(a.resolution_bits(), 13);
        assert_eq!(b.resolution_bits(), 13);
        let mut r1 = rng();
        let mut r2 = rng();
        for i in 0..300 {
            let v = -0.9 + 1.8 * i as f64 / 299.0;
            let ea = a.convert(v, &mut r1);
            let eb = b.convert(v, &mut r2);
            assert!((ea - eb).abs() < 2.0 / 8192.0, "v={v}: {ea} vs {eb}");
        }
    }
}
