//! Front-end sample-and-hold model: gain error, offset, noise, and
//! slew-dependent aperture jitter.

use crate::stage::gaussian;
use rand::Rng;

/// Behavioural S/H amplifier.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShaModel {
    /// Multiplicative gain error (0 = unity gain).
    pub gain_error: f64,
    /// Output-referred offset, normalized.
    pub offset: f64,
    /// RMS sampled noise (kT/C of the hold cap plus opamp), normalized.
    pub noise_rms: f64,
    /// RMS voltage error from aperture jitter at the expected maximum input
    /// slew rate, normalized. (For a sine at `f_in`, set this to
    /// `2π·f_in·A·σ_t`.)
    pub jitter_noise_rms: f64,
}

impl ShaModel {
    /// Ideal S/H.
    pub fn ideal() -> Self {
        ShaModel::default()
    }

    /// Samples a held value.
    pub fn sample<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> f64 {
        let mut out = v * (1.0 - self.gain_error) + self.offset;
        let sigma = (self.noise_rms.powi(2) + self.jitter_noise_rms.powi(2)).sqrt();
        if sigma > 0.0 {
            out += sigma * gaussian(rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_passthrough() {
        let sha = ShaModel::ideal();
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(sha.sample(0.42, &mut r), 0.42);
    }

    #[test]
    fn gain_and_offset_applied() {
        let sha = ShaModel {
            gain_error: 0.01,
            offset: 0.002,
            ..Default::default()
        };
        let mut r = StdRng::seed_from_u64(0);
        let out = sha.sample(1.0, &mut r);
        assert!((out - (0.99 + 0.002)).abs() < 1e-15);
    }

    #[test]
    fn noise_statistics() {
        let sha = ShaModel {
            noise_rms: 3e-4,
            jitter_noise_rms: 4e-4,
            ..Default::default()
        };
        let mut r = StdRng::seed_from_u64(11);
        let n = 20000;
        let xs: Vec<f64> = (0..n).map(|_| sha.sample(0.0, &mut r)).collect();
        let var = xs.iter().map(|x| x * x).sum::<f64>() / n as f64;
        // Total sigma = 5e-4 (3-4-5 triangle).
        assert!((var.sqrt() - 5e-4).abs() < 3e-5, "sigma {}", var.sqrt());
    }
}
