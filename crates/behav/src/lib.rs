//! # adc-behav
//!
//! Behavioural pipelined-ADC simulation: redundant-signed-digit stages with
//! digital error correction, front-end sample-and-hold, nonideality models
//! (finite opamp gain, incomplete settling, capacitor mismatch, comparator
//! offsets, thermal noise, clock jitter), and the standard converter
//! metrics — FFT-based SNDR/SFDR/ENOB and histogram INL/DNL.
//!
//! The paper validates its synthesized MDACs inside a commercial flow; this
//! crate is the equivalent sign-off layer for our reproduction: after the
//! topology optimizer picks `4-3-2…`, the behavioural model confirms the
//! configuration converts at the target resolution with the synthesized
//! block nonidealities.
//!
//! ## Example
//!
//! ```
//! use adc_behav::pipeline::PipelineAdc;
//! use adc_behav::metrics::sine_test;
//!
//! // Ideal 10-bit pipeline: 2-2-2 front-end + 5-bit backend flash.
//! let adc = PipelineAdc::ideal(&[2, 2, 2], 5);
//! assert_eq!(adc.resolution_bits(), 8); // (2-1)+(2-1)+(2-1)+5
//! let m = sine_test(&adc, 4096, 0.95, 12345);
//! assert!(m.enob > 7.8, "ENOB {}", m.enob);
//! ```

pub mod metrics;
pub mod montecarlo;
pub mod pipeline;
pub mod sha;
pub mod signals;
pub mod stage;

pub use metrics::{sine_test, SpectralMetrics};
pub use pipeline::PipelineAdc;
pub use stage::{StageModel, StageNonideality};
