//! Monte-Carlo mismatch analysis: sample comparator offsets and capacitor
//! mismatch from their process statistics and measure yield against an ENOB
//! target.

use crate::metrics::sine_test;
use crate::pipeline::{FlashBackend, PipelineAdc};
use crate::stage::{gaussian, StageModel, StageNonideality};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Statistical description of one stage for Monte-Carlo sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStatistics {
    /// Raw stage resolution `m`.
    pub bits: u32,
    /// 1-σ comparator offset, normalized to the reference.
    pub comparator_sigma: f64,
    /// 1-σ DAC level error (capacitor mismatch), normalized.
    pub dac_sigma: f64,
    /// Deterministic gain error (finite gain + settling), applied to every
    /// sample.
    pub gain_error: f64,
    /// Stage input-referred noise RMS, normalized.
    pub noise_rms: f64,
}

/// Monte-Carlo run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// ENOB of every trial.
    pub enobs: Vec<f64>,
    /// Mean ENOB.
    pub enob_mean: f64,
    /// ENOB standard deviation.
    pub enob_sigma: f64,
    /// Fraction of trials meeting the target.
    pub yield_fraction: f64,
}

/// Samples one concrete pipeline instance from stage statistics.
pub fn sample_pipeline(
    stats: &[StageStatistics],
    backend_bits: u32,
    rng: &mut StdRng,
) -> PipelineAdc {
    let stages = stats
        .iter()
        .map(|st| {
            let levels = (1usize << st.bits) - 1;
            let offs: Vec<f64> = (0..levels - 1)
                .map(|_| st.comparator_sigma * gaussian(rng))
                .collect();
            let dac: Vec<f64> = (0..levels).map(|_| st.dac_sigma * gaussian(rng)).collect();
            StageModel::with_nonideality(
                st.bits,
                StageNonideality {
                    gain_error: st.gain_error,
                    comparator_offsets: offs,
                    dac_errors: dac,
                    noise_rms: st.noise_rms,
                    offset: 0.0,
                },
            )
        })
        .collect();
    PipelineAdc::new(None, stages, FlashBackend::ideal(backend_bits))
}

/// Runs `trials` Monte-Carlo instances and reports ENOB statistics and the
/// yield against `enob_target`.
pub fn monte_carlo_enob(
    stats: &[StageStatistics],
    backend_bits: u32,
    trials: usize,
    fft_points: usize,
    enob_target: f64,
    seed: u64,
) -> MonteCarloResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut enobs = Vec::with_capacity(trials);
    for t in 0..trials {
        let adc = sample_pipeline(stats, backend_bits, &mut rng);
        let m = sine_test(&adc, fft_points, 0.95, seed.wrapping_add(t as u64));
        enobs.push(m.enob);
    }
    let mean = enobs.iter().sum::<f64>() / trials.max(1) as f64;
    let var = enobs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / trials.max(1) as f64;
    let pass = enobs.iter().filter(|&&e| e >= enob_target).count();
    MonteCarloResult {
        enob_mean: mean,
        enob_sigma: var.sqrt(),
        yield_fraction: pass as f64 / trials.max(1) as f64,
        enobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_stats(bits: &[u32]) -> Vec<StageStatistics> {
        bits.iter()
            .map(|&b| StageStatistics {
                bits: b,
                comparator_sigma: 0.0,
                dac_sigma: 0.0,
                gain_error: 0.0,
                noise_rms: 0.0,
            })
            .collect()
    }

    #[test]
    fn ideal_statistics_give_full_yield() {
        let stats = clean_stats(&[3, 2]);
        let r = monte_carlo_enob(&stats, 5, 5, 2048, 7.0, 42);
        assert_eq!(r.yield_fraction, 1.0);
        assert!(r.enob_sigma < 0.05);
    }

    #[test]
    fn small_offsets_within_redundancy_keep_yield() {
        // σ = 20 mV on a ±1 V reference: well inside ±125 mV redundancy of
        // a 3-bit stage.
        let mut stats = clean_stats(&[3, 2]);
        stats[0].comparator_sigma = 0.02;
        let r = monte_carlo_enob(&stats, 5, 8, 2048, 7.0, 1);
        assert_eq!(r.yield_fraction, 1.0, "enobs: {:?}", r.enobs);
    }

    #[test]
    fn large_mismatch_kills_yield() {
        let mut stats = clean_stats(&[3, 2]);
        stats[0].dac_sigma = 0.02; // 2 % DAC errors in an 8-bit converter
        let r = monte_carlo_enob(&stats, 5, 8, 2048, 7.5, 3);
        assert!(r.yield_fraction < 1.0, "enobs: {:?}", r.enobs);
        assert!(r.enob_mean < 7.8);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let stats = clean_stats(&[2, 2]);
        let a = monte_carlo_enob(&stats, 4, 3, 1024, 5.0, 9);
        let b = monte_carlo_enob(&stats, 4, 3, 1024, 5.0, 9);
        assert_eq!(a.enobs, b.enobs);
    }
}
