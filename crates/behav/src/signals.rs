//! Test-signal generation: coherent sine waves and linearity ramps.

/// Picks a coherent test frequency near `f_target`: returns `(bin, f_exact)`
/// such that `bin` is odd (and coprime with the power-of-two record length,
/// guaranteeing every code is exercised) and `f_exact = bin·fs/n`.
///
/// # Panics
/// Panics if `n < 4` or `f_target` is not inside `(0, fs/2)`.
pub fn coherent_bin(fs: f64, n: usize, f_target: f64) -> (usize, f64) {
    assert!(n >= 4, "record too short");
    assert!(
        f_target > 0.0 && f_target < fs / 2.0,
        "target out of Nyquist range"
    );
    let raw = (f_target * n as f64 / fs).round() as usize;
    let mut bin = raw.clamp(1, n / 2 - 1);
    if bin % 2 == 0 {
        bin = (bin + 1).min(n / 2 - 1);
        if bin % 2 == 0 {
            bin -= 1;
        }
    }
    (bin, bin as f64 * fs / n as f64)
}

/// Generates `n` samples of `ampl·sin(2π·bin·k/n + phase)`.
pub fn coherent_sine(n: usize, bin: usize, ampl: f64, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|k| {
            ampl * (2.0 * std::f64::consts::PI * bin as f64 * k as f64 / n as f64 + phase).sin()
        })
        .collect()
}

/// Generates a linear ramp of `n` samples from `lo` to `hi` inclusive.
pub fn ramp(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|k| lo + (hi - lo) * k as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherent_bin_is_odd_and_near_target() {
        let (bin, f) = coherent_bin(40e6, 4096, 2e6);
        assert_eq!(bin % 2, 1);
        assert!((f - 2e6).abs() < 40e6 / 4096.0 * 2.0);
        assert!((f - bin as f64 * 40e6 / 4096.0).abs() < 1e-6);
    }

    #[test]
    fn coherent_sine_closes_cleanly() {
        let s = coherent_sine(256, 7, 1.0, 0.3);
        // The wrap-around sample continues the sequence exactly.
        let expected = (2.0 * std::f64::consts::PI * 7.0 * 256.0 / 256.0 + 0.3).sin();
        assert!((s[0] - (0.3f64).sin()).abs() < 1e-12);
        assert!((expected - s[0]).abs() < 1e-12);
    }

    #[test]
    fn ramp_endpoints() {
        let r = ramp(11, -1.0, 1.0);
        assert_eq!(r[0], -1.0);
        assert_eq!(r[10], 1.0);
        assert!((r[5] - 0.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn rejects_super_nyquist() {
        coherent_bin(40e6, 1024, 30e6);
    }
}
