//! Converter metrics: FFT-based SNDR/SFDR/THD/ENOB (IEEE-1241-style sine
//! test) and histogram INL/DNL (ramp test).

use crate::pipeline::PipelineAdc;
use crate::signals::{coherent_sine, ramp};
use adc_numerics::fft::{power_spectrum, Window};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Spectral test results.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralMetrics {
    /// Signal-to-noise-and-distortion ratio, dB.
    pub sndr_db: f64,
    /// Spurious-free dynamic range, dB (signal to biggest spur).
    pub sfdr_db: f64,
    /// Total harmonic distortion (first five harmonics), dB (negative).
    pub thd_db: f64,
    /// Effective number of bits `(SNDR − 1.76)/6.02`.
    pub enob: f64,
    /// Signal power found at the test bin.
    pub signal_power: f64,
}

/// Computes spectral metrics from time-domain samples known to contain a
/// coherent tone at `signal_bin`.
///
/// Uses a rectangular window (coherent capture). DC and the signal bin
/// (±0 bins, coherence assumed exact) are excluded from noise.
///
/// # Panics
/// Panics if the record length is not a power of two or the bin is out of
/// range.
pub fn spectral_metrics(samples: &[f64], signal_bin: usize) -> SpectralMetrics {
    let n = samples.len();
    assert!(
        signal_bin > 0 && signal_bin < n / 2,
        "signal bin out of range"
    );
    let ps = power_spectrum(samples, Window::Rectangular);
    let signal_power = ps[signal_bin];
    let mut noise_distortion = 0.0;
    let mut max_spur: f64 = 0.0;
    let mut harmonics = 0.0;
    for (k, &p) in ps.iter().enumerate().skip(1) {
        if k == signal_bin {
            continue;
        }
        noise_distortion += p;
        if p > max_spur {
            max_spur = p;
        }
    }
    // Harmonics 2..6, folded into the first Nyquist zone.
    for h in 2..=6usize {
        let k = (h * signal_bin) % n;
        let k = if k > n / 2 { n - k } else { k };
        if k > 0 && k < n / 2 && k != signal_bin {
            harmonics += ps[k];
        }
    }
    let sndr_db = 10.0 * (signal_power / noise_distortion.max(1e-300)).log10();
    SpectralMetrics {
        sndr_db,
        sfdr_db: 10.0 * (signal_power / max_spur.max(1e-300)).log10(),
        thd_db: 10.0 * (harmonics.max(1e-300) / signal_power).log10(),
        enob: (sndr_db - 1.76) / 6.02,
        signal_power,
    }
}

/// Runs a coherent sine test on an ADC: `n` samples (power of two) of a
/// near-full-scale tone, reproducible from `seed`.
pub fn sine_test(adc: &PipelineAdc, n: usize, amplitude: f64, seed: u64) -> SpectralMetrics {
    // An odd bin near n/37 keeps the tone away from DC and Nyquist.
    let bin = {
        let raw = (n / 37).max(3);
        if raw % 2 == 0 {
            raw + 1
        } else {
            raw
        }
    };
    let input = coherent_sine(n, bin, amplitude, 0.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let out = adc.convert_waveform(&input, &mut rng);
    spectral_metrics(&out, bin)
}

/// Linearity test results (code-density / ramp method).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearityMetrics {
    /// Per-code DNL in LSB (length `2^K − 2`, first/last codes excluded).
    pub dnl: Vec<f64>,
    /// Per-code INL in LSB.
    pub inl: Vec<f64>,
    /// Worst |DNL|, LSB.
    pub dnl_max: f64,
    /// Worst |INL|, LSB.
    pub inl_max: f64,
    /// Number of codes that never occurred (missing codes).
    pub missing_codes: usize,
}

/// Measures INL/DNL with a dense ramp test: `samples_per_code·2^K` points
/// across slightly beyond full scale.
pub fn ramp_linearity(adc: &PipelineAdc, samples_per_code: usize, seed: u64) -> LinearityMetrics {
    let k = adc.resolution_bits();
    let ncodes = 1usize << k;
    let n = samples_per_code * ncodes;
    let input = ramp(n, -1.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist = vec![0usize; ncodes];
    for &v in &input {
        let c = adc.convert_code(v, &mut rng) as usize;
        hist[c] += 1;
    }
    // Exclude the end bins (they absorb overrange).
    let interior = &hist[1..ncodes - 1];
    let total: usize = interior.iter().sum();
    let ideal = total as f64 / interior.len() as f64;
    let mut dnl = Vec::with_capacity(interior.len());
    let mut inl = Vec::with_capacity(interior.len());
    let mut acc = 0.0;
    let mut missing = 0;
    for &h in interior {
        if h == 0 {
            missing += 1;
        }
        let d = h as f64 / ideal - 1.0;
        dnl.push(d);
        acc += d;
        inl.push(acc);
    }
    // Remove the endpoint-fit line from INL (first-order correction).
    let last = *inl.last().unwrap_or(&0.0);
    let m = inl.len().max(1) as f64;
    for (i, v) in inl.iter_mut().enumerate() {
        *v -= last * (i as f64 + 1.0) / m;
    }
    let dnl_max = dnl.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
    let inl_max = inl.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
    LinearityMetrics {
        dnl,
        inl,
        dnl_max,
        inl_max,
        missing_codes: missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FlashBackend;
    use crate::stage::{StageModel, StageNonideality};

    #[test]
    fn ideal_quantizer_enob_close_to_resolution() {
        for (front, back, k) in [(vec![2u32, 2], 4u32, 6u32), (vec![3, 2], 5, 8)] {
            let adc = PipelineAdc::ideal(&front, back);
            assert_eq!(adc.resolution_bits(), k);
            let m = sine_test(&adc, 4096, 0.95, 7);
            // Ideal ENOB ≈ K (within the quantization-model margin).
            assert!(m.enob > k as f64 - 0.35, "K={k}: ENOB {}", m.enob);
            assert!(m.enob < k as f64 + 0.5, "K={k}: ENOB {}", m.enob);
        }
    }

    #[test]
    fn thirteen_bit_ideal_pipeline() {
        let adc = PipelineAdc::ideal(&[4, 3, 2], 7);
        let m = sine_test(&adc, 16384, 0.95, 3);
        assert!(m.enob > 12.6, "ENOB {}", m.enob);
        assert!(m.sfdr_db > 85.0, "SFDR {}", m.sfdr_db);
    }

    #[test]
    fn gain_error_limits_enob() {
        // 2 % first-stage gain error in a 10-bit converter: reconstruction
        // error ≈ ε·|residue|/G ≈ 2.5e-3 ≳ 1 LSB → clear ENOB loss.
        let s1 = StageModel::with_nonideality(
            3,
            StageNonideality {
                gain_error: 2e-2,
                ..Default::default()
            },
        );
        let mut stages = vec![s1];
        stages.push(StageModel::ideal(2));
        let adc = PipelineAdc::new(None, stages, FlashBackend::ideal(7));
        assert_eq!(adc.resolution_bits(), 10);
        let m = sine_test(&adc, 8192, 0.95, 5);
        assert!(m.enob < 9.3, "ENOB {} should be degraded", m.enob);
        let ideal = sine_test(&PipelineAdc::ideal(&[3, 2], 7), 8192, 0.95, 5);
        assert!(ideal.enob - m.enob > 0.5, "{} vs {}", ideal.enob, m.enob);
    }

    #[test]
    fn noise_budget_costs_about_half_bit() {
        // Input-referred noise equal to the quantization RMS (LSB/√12)
        // costs ≈ 1.5 dB ≈ 0.25–0.5 bit.
        let adc = PipelineAdc::ideal(&[2, 2], 6); // 8-bit
        let lsb = 2.0 / 256.0;
        let qrms = lsb / 12.0_f64.sqrt();
        let input = coherent_sine(8192, 221, 0.95, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = adc.convert_waveform_noisy(&input, qrms, &mut rng);
        let m = spectral_metrics(&noisy, 221);
        let ideal = sine_test(&adc, 8192, 0.95, 2);
        let loss = ideal.enob - m.enob;
        assert!(loss > 0.2 && loss < 0.9, "loss {loss}");
    }

    #[test]
    fn ramp_test_ideal_adc_is_linear() {
        let adc = PipelineAdc::ideal(&[2, 2], 4); // 6-bit
        let lin = ramp_linearity(&adc, 32, 1);
        assert_eq!(lin.missing_codes, 0);
        assert!(lin.dnl_max < 0.2, "DNL {}", lin.dnl_max);
        assert!(lin.inl_max < 0.2, "INL {}", lin.inl_max);
    }

    #[test]
    fn dac_mismatch_shows_up_in_inl() {
        let s1 = StageModel::with_nonideality(
            2,
            StageNonideality {
                dac_errors: vec![0.004, 0.0, -0.004],
                ..Default::default()
            },
        );
        let adc = PipelineAdc::new(None, vec![s1, StageModel::ideal(2)], FlashBackend::ideal(4));
        let lin = ramp_linearity(&adc, 32, 1);
        let ideal = ramp_linearity(&PipelineAdc::ideal(&[2, 2], 4), 32, 1);
        assert!(
            lin.inl_max > 2.0 * ideal.inl_max,
            "mismatch INL {} vs ideal {}",
            lin.inl_max,
            ideal.inl_max
        );
    }

    #[test]
    fn spectral_metrics_of_pure_tone() {
        let s = coherent_sine(4096, 111, 0.5, 0.0);
        let m = spectral_metrics(&s, 111);
        assert!(
            m.sndr_db > 250.0,
            "pure tone should be noiseless: {}",
            m.sndr_db
        );
        assert!((m.signal_power - 0.125).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "signal bin")]
    fn bin_out_of_range_panics() {
        spectral_metrics(&[0.0; 64], 32);
    }
}
