//! Behavioural model of one pipelined stage: an `m`-bit sub-ADC plus an
//! MDAC producing the amplified residue, in the redundant-signed-digit
//! (RSD) form that digital correction expects.
//!
//! Signals are normalized to the reference: the stage input lives in
//! `[−1, 1]` (differential full scale). An `m`-bit stage resolves the digit
//! `d ∈ {−(2^{m−1}−1), …, +(2^{m−1}−1)}` (that is `2^m − 1` levels — the
//! classic "1.5-bit" stage is `m = 2` with levels −1/0/+1) and outputs
//!
//! ```text
//! residue = G·v − d,   G = 2^{m−1}
//! ```
//!
//! which stays within `±0.5` ideally, leaving `±0.5` of correction range to
//! absorb comparator offsets up to `±Vref/2^m`.

use rand::Rng;

/// Nonidealities applied by a stage's MDAC and sub-ADC.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageNonideality {
    /// Multiplicative interstage-gain error (e.g. `1/(A0·β)` from finite
    /// opamp gain plus incomplete-settling error). 0 = ideal.
    pub gain_error: f64,
    /// Per-comparator threshold offsets, normalized to the reference.
    /// Length must be `levels − 1` (thresholds count) or empty for ideal.
    pub comparator_offsets: Vec<f64>,
    /// Per-digit DAC level error (capacitor mismatch), normalized; length
    /// `levels` or empty.
    pub dac_errors: Vec<f64>,
    /// RMS input-referred thermal noise of the stage, normalized.
    pub noise_rms: f64,
    /// Residue offset (opamp offset referred to the output), normalized.
    pub offset: f64,
}

/// Behavioural model of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageModel {
    bits: u32,
    nonideal: StageNonideality,
}

impl StageModel {
    /// Creates an ideal `m`-bit stage (`m ≥ 2`; `m = 2` is the 1.5-bit
    /// stage).
    ///
    /// # Panics
    /// Panics if `bits < 2` or `bits > 6`.
    pub fn ideal(bits: u32) -> Self {
        StageModel::with_nonideality(bits, StageNonideality::default())
    }

    /// Creates a stage with explicit nonidealities.
    ///
    /// # Panics
    /// Panics if `bits` is outside `2..=6`, or offset/error vector lengths
    /// don't match the level count.
    pub fn with_nonideality(bits: u32, nonideal: StageNonideality) -> Self {
        assert!((2..=6).contains(&bits), "stage bits must be in 2..=6");
        let levels = (1usize << bits) - 1;
        assert!(
            nonideal.comparator_offsets.is_empty()
                || nonideal.comparator_offsets.len() == levels - 1,
            "expected {} comparator offsets",
            levels - 1
        );
        assert!(
            nonideal.dac_errors.is_empty() || nonideal.dac_errors.len() == levels,
            "expected {} DAC errors",
            levels
        );
        StageModel { bits, nonideal }
    }

    /// Raw sub-ADC resolution `m` of this stage.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Effective resolution contributed after digital correction: `m − 1`.
    pub fn effective_bits(&self) -> u32 {
        self.bits - 1
    }

    /// Interstage gain `G = 2^{m−1}`.
    pub fn gain(&self) -> f64 {
        (1u64 << (self.bits - 1)) as f64
    }

    /// Number of quantizer levels `2^m − 1`.
    pub fn levels(&self) -> usize {
        (1usize << self.bits) - 1
    }

    /// Number of comparators `2^m − 2`.
    pub fn comparator_count(&self) -> usize {
        self.levels() - 1
    }

    /// The nonideality model.
    pub fn nonideality(&self) -> &StageNonideality {
        &self.nonideal
    }

    /// Largest digit magnitude `2^{m−1} − 1`.
    fn dmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Sub-ADC decision: maps the (noisy) input to a digit.
    ///
    /// Thresholds sit at `(k + 0.5)/G` for `k = −dmax..dmax−1`, perturbed by
    /// the comparator offsets.
    pub fn quantize(&self, v: f64) -> i32 {
        let g = self.gain();
        let dmax = self.dmax();
        // Count thresholds below v.
        let mut d = -dmax;
        for (i, k) in (-dmax..dmax).enumerate() {
            let mut t = (k as f64 + 0.5) / g;
            if let Some(&off) = self.nonideal.comparator_offsets.get(i) {
                t += off;
            }
            if v > t {
                d = k + 1;
            }
        }
        d
    }

    /// Processes one sample: returns `(digit, residue)`.
    ///
    /// `rng` drives the thermal-noise draw; pass a deterministic generator
    /// for reproducible simulations.
    pub fn process<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> (i32, f64) {
        let v_noisy = if self.nonideal.noise_rms > 0.0 {
            v + self.nonideal.noise_rms * gaussian(rng)
        } else {
            v
        };
        let d = self.quantize(v_noisy);
        let g_eff = self.gain() * (1.0 - self.nonideal.gain_error);
        let dac = d as f64
            + self
                .nonideal
                .dac_errors
                .get((d + self.dmax()) as usize)
                .copied()
                .unwrap_or(0.0);
        let residue =
            g_eff * v_noisy - dac * (1.0 - self.nonideal.gain_error) + self.nonideal.offset;
        (d, residue)
    }
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > 1e-300 {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_point_five_bit_stage_levels() {
        let s = StageModel::ideal(2);
        assert_eq!(s.levels(), 3);
        assert_eq!(s.comparator_count(), 2);
        assert_eq!(s.gain(), 2.0);
        assert_eq!(s.effective_bits(), 1);
        // Thresholds at ±0.25.
        assert_eq!(s.quantize(-0.5), -1);
        assert_eq!(s.quantize(0.0), 0);
        assert_eq!(s.quantize(0.5), 1);
        assert_eq!(s.quantize(0.2), 0);
        assert_eq!(s.quantize(0.3), 1);
    }

    #[test]
    fn four_bit_stage_structure() {
        let s = StageModel::ideal(4);
        assert_eq!(s.levels(), 15);
        assert_eq!(s.comparator_count(), 14);
        assert_eq!(s.gain(), 8.0);
    }

    #[test]
    fn ideal_residue_bounded_half() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in 2..=4 {
            let s = StageModel::ideal(bits);
            let g = s.gain();
            // Residue stays within ±0.5 for |v| ≤ (dmax+0.5)/G (0.75 for
            // m=2, 0.875 for m=3, 0.9375 for m=4); the digit clamps beyond
            // that and the residue grows toward ±1 at full scale.
            let half_bound = (((1u64 << (bits - 1)) - 1) as f64 + 0.5) / g;
            for i in 0..1000 {
                let v = -1.0 + 2.0 * i as f64 / 999.0;
                let (_, r) = s.process(v, &mut rng);
                assert!(r.abs() <= 1.0 + 1e-12, "bits={bits} v={v} r={r}");
                if v.abs() < half_bound - 1e-3 {
                    assert!(r.abs() <= 0.5 + 1e-9, "bits={bits} v={v} r={r}");
                }
            }
        }
    }

    #[test]
    fn residue_reconstruction_identity() {
        // vin = (d + residue)/G exactly for the ideal stage.
        let mut rng = StdRng::seed_from_u64(2);
        let s = StageModel::ideal(3);
        for i in 0..100 {
            let v = -0.95 + 1.9 * i as f64 / 99.0;
            let (d, r) = s.process(v, &mut rng);
            let back = (d as f64 + r) / s.gain();
            assert!((back - v).abs() < 1e-12);
        }
    }

    #[test]
    fn comparator_offsets_shift_decisions_not_reconstruction() {
        let mut rng = StdRng::seed_from_u64(3);
        let off = vec![0.05, -0.04]; // within ±1/2^m = ±0.25 for m=2
        let s = StageModel::with_nonideality(
            2,
            StageNonideality {
                comparator_offsets: off,
                ..Default::default()
            },
        );
        for i in 0..200 {
            // Stay inside the m=2 non-clamping range ±0.75 (minus offset
            // margin) so the residue bound applies.
            let v = -0.65 + 1.3 * i as f64 / 199.0;
            let (d, r) = s.process(v, &mut rng);
            // Reconstruction identity still exact (offsets only move d).
            let back = (d as f64 + r) / s.gain();
            assert!((back - v).abs() < 1e-12);
            // Residue shifted by at most G·|offset| beyond ±0.5.
            assert!(r.abs() <= 0.5 + 2.0 * 0.05 + 1e-9, "v={v} r={r}");
        }
    }

    #[test]
    fn gain_error_breaks_identity_proportionally() {
        let mut rng = StdRng::seed_from_u64(4);
        let eps = 1e-3;
        let s = StageModel::with_nonideality(
            2,
            StageNonideality {
                gain_error: eps,
                ..Default::default()
            },
        );
        let v = 0.3; // d = 1, ideal residue −0.4 → error ≈ 0.2·eps
        let (d, r) = s.process(v, &mut rng);
        let back = (d as f64 + r) / s.gain();
        assert!((back - v).abs() < 2.0 * eps);
        assert!((back - v).abs() > eps * 0.1);
    }

    #[test]
    fn noise_is_reproducible_with_seed() {
        let s = StageModel::with_nonideality(
            2,
            StageNonideality {
                noise_rms: 1e-3,
                ..Default::default()
            },
        );
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(s.process(0.1, &mut r1), s.process(0.1, &mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "stage bits")]
    fn rejects_one_bit_stage() {
        StageModel::ideal(1);
    }

    #[test]
    #[should_panic(expected = "comparator offsets")]
    fn rejects_wrong_offset_count() {
        StageModel::with_nonideality(
            2,
            StageNonideality {
                comparator_offsets: vec![0.0; 5],
                ..Default::default()
            },
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
