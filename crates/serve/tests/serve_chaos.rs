//! Chaos leg of the serving layer (`--features faults`): a seeded fault
//! injected through a **live server** is absorbed by the flow's recovery
//! ladder and leaves other in-flight runs untouched.
#![cfg(feature = "faults")]

use adc_mdac::power::PowerModelParams;
use adc_mdac::specs::AdcSpec;
use adc_numerics::faults::{
    self, FaultAction, FaultPlan, FaultRule, SITE_CACHE_COMMIT, SITE_SYNTH_EXECUTE,
};
use adc_serve::http;
use adc_serve::protocol::{render_payload, SubmitRequest, BACKEND_BITS};
use adc_serve::{FlowServer, ServerConfig};
use adc_synth::SynthConfig;
use adc_topopt::enumerate::enumerate_candidates;
use adc_topopt::flow::{distinct_mdac_specs, run_flow, FlowOptions, FlowRequest};
use adc_topopt::wire::JsonValue;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The fault registry is process-global; these tests serialize on this
/// lock so concurrent test threads never see each other's plans.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny_request(resolution: u32) -> SubmitRequest {
    SubmitRequest {
        spec: AdcSpec::date05(resolution),
        cfg: SynthConfig {
            iterations: 8,
            nm_iterations: 2,
            seed: 13,
            ..Default::default()
        },
        options: FlowOptions::default(),
    }
}

fn submit(addr: SocketAddr, req: &SubmitRequest) -> u64 {
    let (status, body) =
        http::request(addr, "POST", "/v1/runs", Some(&req.canonical().render())).unwrap();
    assert_eq!(status, 202, "{body}");
    match JsonValue::parse(&body).unwrap().get("run_id") {
        Some(JsonValue::Num(id)) => *id as u64,
        other => panic!("submit reply without run_id: {other:?}"),
    }
}

fn poll_until_terminal(addr: SocketAddr, id: u64) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http::request(addr, "GET", &format!("/v1/runs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = JsonValue::parse(&body).unwrap();
        if let Some(JsonValue::Str(state)) = doc.get("state") {
            if state == "Completed" || state == "Failed" {
                return doc;
            }
        }
        assert!(Instant::now() < deadline, "run {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stat(doc: &JsonValue, key: &str) -> f64 {
    match doc.get("stats").and_then(|s| s.get(key)) {
        Some(JsonValue::Num(v)) => *v,
        other => panic!("stats.{key} missing: {other:?}"),
    }
}

fn result_subtree(payload: &str) -> String {
    JsonValue::parse(payload)
        .unwrap()
        .get("result")
        .expect("payload has a result subtree")
        .render()
}

/// A single injected fault (first synthesis attempt of one block that
/// exists **only** in the 13-bit reuse set) hits a live server running a
/// 13-bit and a 10-bit flow concurrently:
/// - the 13-bit run recovers through the retry ladder (`recovered == 1`,
///   no casualties) and completes;
/// - the concurrent 10-bit run is untouched — its served payload stays
///   bit-identical to the fault-free serial batch path.
#[test]
fn injected_fault_on_live_server_leaves_other_runs_unaffected() {
    let _g = lock();
    let req13 = tiny_request(13);
    let req10 = tiny_request(10);

    // Pick a reuse key unique to the 13-bit set so the scoped fault
    // cannot touch the 10-bit run.
    let keys13 = distinct_mdac_specs(&req13.spec, &enumerate_candidates(13, BACKEND_BITS));
    let keys10 = distinct_mdac_specs(&req10.spec, &enumerate_candidates(10, BACKEND_BITS));
    let only13 = keys13
        .iter()
        .copied()
        .find(|k| !keys10.contains(k))
        .expect("13-bit set has a key outside the 10-bit set");

    let server = FlowServer::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    faults::install(FaultPlan::single(
        11,
        FaultRule::first(
            SITE_SYNTH_EXECUTE,
            &format!("m{}a{}r0", only13.0, only13.1),
            FaultAction::Panic,
        ),
    ));
    let id13 = submit(addr, &req13);
    let id10 = submit(addr, &req10);
    let done13 = poll_until_terminal(addr, id13);
    let done10 = poll_until_terminal(addr, id10);
    faults::clear();

    // The faulted run recovered instead of failing.
    assert_eq!(
        done13.get("state"),
        Some(&JsonValue::Str("Completed".to_string())),
        "{done13:?}"
    );
    assert_eq!(stat(&done13, "recovered"), 1.0, "{done13:?}");
    assert_eq!(stat(&done13, "failed"), 0.0);
    assert_eq!(stat(&done13, "attempts"), stat(&done13, "blocks") + 1.0);

    // The bystander run is bit-identical to the fault-free batch path.
    assert_eq!(
        done10.get("state"),
        Some(&JsonValue::Str("Completed".to_string()))
    );
    assert_eq!(stat(&done10, "recovered"), 0.0);
    assert_eq!(stat(&done10, "failed"), 0.0);
    let (status, payload) =
        http::request(addr, "GET", &format!("/v1/runs/{id10}/result"), None).unwrap();
    assert_eq!(status, 200);
    let params = PowerModelParams::calibrated();
    let candidates = enumerate_candidates(10, BACKEND_BITS);
    let oracle_run = run_flow(
        &FlowRequest::new(&req10.spec, &candidates, &params, &req10.cfg).serial(),
        None,
    );
    let oracle = render_payload(&req10, &candidates, &oracle_run, false);
    assert_eq!(
        result_subtree(&payload),
        result_subtree(&oracle),
        "the injected 13-bit fault leaked into the 10-bit run"
    );
    server.shutdown();
}

/// A fault that kills the whole ladder of a 13-bit-only block degrades
/// that run to a typed terminal state visible over the wire — the server
/// never unwinds, and the run's casualties are reported in the payload
/// path (`Failed` only when no candidate survives, otherwise `Completed`
/// with failures listed).
#[test]
fn ladder_exhausting_fault_is_typed_over_the_wire() {
    let _g = lock();
    let req13 = tiny_request(13);
    let keys13 = distinct_mdac_specs(&req13.spec, &enumerate_candidates(13, BACKEND_BITS));
    let keys10 = distinct_mdac_specs(
        &tiny_request(10).spec,
        &enumerate_candidates(10, BACKEND_BITS),
    );
    let only13 = keys13
        .iter()
        .copied()
        .find(|k| !keys10.contains(k))
        .expect("13-bit set has a key outside the 10-bit set");

    let server = FlowServer::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    faults::install(FaultPlan {
        seed: 12,
        rules: (0..3)
            .map(|r| {
                FaultRule::first(
                    SITE_SYNTH_EXECUTE,
                    &format!("m{}a{}r{r}", only13.0, only13.1),
                    FaultAction::Panic,
                )
            })
            .collect(),
    });
    let id = submit(addr, &req13);
    let done = poll_until_terminal(addr, id);
    faults::clear();

    // Candidates that avoid the killed block survive, so the run lands
    // Completed with the casualty reported in stats; either way the
    // server stayed up and the state is terminal and typed.
    let state = match done.get("state") {
        Some(JsonValue::Str(s)) => s.clone(),
        other => panic!("no state: {other:?}"),
    };
    assert!(state == "Completed" || state == "Failed", "{state}");
    assert_eq!(stat(&done, "failed"), 1.0, "{done:?}");
    let (status, body) = http::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "server must survive the fault: {body}");
    server.shutdown();
}

/// `Corrupt` injected at every snapshot-load commit: the integrity check
/// catches each corrupted entry, the server boots **cold** (all entries
/// dropped and counted in `corrupt_dropped`) instead of crashing, never
/// serves a corrupt entry, and the subsequent run — fully cold — still
/// renders bit-identical to the serial batch path.
#[test]
fn corrupt_snapshot_load_boots_cold_and_never_serves_corrupt_entries() {
    let _g = lock();
    let dir = std::env::temp_dir().join("adc-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "chaos-corrupt-{}.snapshot.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let req = tiny_request(10);

    // Build a legitimate snapshot with a fault-free cold run.
    let server = FlowServer::start(ServerConfig {
        snapshot: Some(path.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let done = poll_until_terminal(server.addr(), submit(server.addr(), &req));
    assert_eq!(
        done.get("state"),
        Some(&JsonValue::Str("Completed".to_string()))
    );
    let entries = server.cache_len();
    assert!(entries > 0);
    server.shutdown();
    assert!(path.exists());

    // Corrupt every restore commit (one rule per entry, all scoped to
    // the snapshot load so live cache commits stay untouched).
    faults::install(FaultPlan {
        seed: 21,
        rules: (0..entries)
            .map(|nth| FaultRule {
                site: SITE_CACHE_COMMIT,
                scope_contains: Some("snapshot_load".to_string()),
                nth,
                action: FaultAction::Corrupt,
            })
            .collect(),
    });
    let server = FlowServer::start(ServerConfig {
        snapshot: Some(path.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    faults::clear();
    let addr = server.addr();

    assert_eq!(server.cache_len(), 0, "every corrupted entry was dropped");
    assert_eq!(
        server.cache_stats().corrupt_dropped as usize,
        entries,
        "every drop is counted"
    );

    // The cold server never serves a corrupt entry: the run re-synthesizes
    // everything and still matches the fault-free serial oracle.
    let redo = poll_until_terminal(addr, submit(addr, &req));
    assert_eq!(
        redo.get("state"),
        Some(&JsonValue::Str("Completed".to_string()))
    );
    assert_eq!(stat(&redo, "cache_hits"), 0.0, "nothing warm survived");
    assert!(stat(&redo, "cold") > 0.0);
    let (status, payload) = http::request(addr, "GET", "/v1/runs/1/result", None).unwrap();
    assert_eq!(status, 200);
    let params = PowerModelParams::calibrated();
    let candidates = enumerate_candidates(10, BACKEND_BITS);
    let oracle_run = run_flow(
        &FlowRequest::new(&req.spec, &candidates, &params, &req.cfg).serial(),
        None,
    );
    let oracle = render_payload(&req, &candidates, &oracle_run, false);
    assert_eq!(result_subtree(&payload), result_subtree(&oracle));
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
