//! End-to-end serving tests over real sockets: submit/poll/fetch against
//! the batch oracle, warm-cache acceptance, concurrent-client
//! bit-identity, admission control, cancellation, and typed error codes.

use adc_mdac::power::PowerModelParams;
use adc_mdac::specs::AdcSpec;
use adc_serve::http;
use adc_serve::protocol::{render_payload, SubmitRequest, BACKEND_BITS};
use adc_serve::{FlowServer, ServerConfig};
use adc_synth::SynthConfig;
use adc_topopt::enumerate::enumerate_candidates;
use adc_topopt::flow::{run_flow, FlowOptions, FlowRequest};
use adc_topopt::wire::JsonValue;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn tiny_request(resolution: u32) -> SubmitRequest {
    SubmitRequest {
        spec: AdcSpec::date05(resolution),
        cfg: SynthConfig {
            iterations: 8,
            nm_iterations: 2,
            seed: 13,
            ..Default::default()
        },
        options: FlowOptions::default(),
    }
}

fn submit(addr: SocketAddr, req: &SubmitRequest) -> u64 {
    let (status, body) =
        http::request(addr, "POST", "/v1/runs", Some(&req.canonical().render())).unwrap();
    assert_eq!(status, 202, "{body}");
    match JsonValue::parse(&body).unwrap().get("run_id") {
        Some(JsonValue::Num(id)) => *id as u64,
        other => panic!("submit reply without run_id: {other:?}"),
    }
}

fn poll_until_terminal(addr: SocketAddr, id: u64) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http::request(addr, "GET", &format!("/v1/runs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = JsonValue::parse(&body).unwrap();
        if let Some(JsonValue::Str(state)) = doc.get("state") {
            if state == "Completed" || state == "Failed" {
                return doc;
            }
        }
        assert!(Instant::now() < deadline, "run {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fetch_payload(addr: SocketAddr, id: u64) -> String {
    let (status, body) =
        http::request(addr, "GET", &format!("/v1/runs/{id}/result"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    body
}

/// Renders the serial batch path's payload for the same request — the
/// fully independent oracle (exclusive cacheless run, serial executor).
fn serial_oracle(req: &SubmitRequest) -> String {
    let params = PowerModelParams::calibrated();
    let candidates = enumerate_candidates(req.spec.resolution, BACKEND_BITS);
    let run = run_flow(
        &FlowRequest::new(&req.spec, &candidates, &params, &req.cfg)
            .serial()
            .with_options(req.options),
        None,
    );
    render_payload(req, &candidates, &run, false)
}

fn result_subtree(payload: &str) -> String {
    JsonValue::parse(payload)
        .unwrap()
        .get("result")
        .expect("payload has a result subtree")
        .render()
}

fn stat(doc: &JsonValue, key: &str) -> f64 {
    match doc.get("stats").and_then(|s| s.get(key)) {
        Some(JsonValue::Num(v)) => *v,
        other => panic!("stats.{key} missing: {other:?}"),
    }
}

/// Submit → poll → fetch: the served payload's deterministic subtree is
/// bit-identical to the serial batch path's, and the session walked
/// Ready → Running → Completed.
#[test]
fn served_payload_matches_serial_batch_path() {
    let server = FlowServer::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let req = tiny_request(10);

    let id = submit(addr, &req);
    let done = poll_until_terminal(addr, id);
    assert_eq!(
        done.get("state"),
        Some(&JsonValue::Str("Completed".to_string()))
    );
    let payload = fetch_payload(addr, id);
    assert_eq!(
        result_subtree(&payload),
        result_subtree(&serial_oracle(&req)),
        "server and serial batch must render bit-identical results"
    );
    // The echoed request parses back to the submitted one.
    let echo = JsonValue::parse(&payload)
        .unwrap()
        .get("request")
        .unwrap()
        .render();
    assert_eq!(echo, req.canonical().render());
    server.shutdown();
}

/// Acceptance criterion: a second submission of the same spec to a warm
/// server completes with a 100 % hit rate (≥ the required 50 %) and zero
/// cold syntheses, mirroring the batch multi-resolution replay result.
#[test]
fn warm_server_replays_from_cache_without_cold_synthesis() {
    let server = FlowServer::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let req = tiny_request(10);

    let first = poll_until_terminal(addr, submit(addr, &req));
    assert!(stat(&first, "blocks") > 0.0);
    let warm = poll_until_terminal(addr, submit(addr, &req));
    assert_eq!(
        warm.get("state"),
        Some(&JsonValue::Str("Completed".to_string()))
    );
    let hits = stat(&warm, "cache_hits");
    let blocks = stat(&warm, "blocks");
    assert_eq!(hits, blocks, "every block must replay from the cache");
    assert!(hits / blocks >= 0.5, "hit rate {hits}/{blocks}");
    assert_eq!(stat(&warm, "cold"), 0.0, "zero cold syntheses");
    assert_eq!(stat(&warm, "evaluations_spent"), 0.0);
    // Payloads stay bit-identical between cold and warm serves.
    let cold_payload = fetch_payload(addr, 1);
    let warm_payload = fetch_payload(addr, 2);
    assert_eq!(result_subtree(&cold_payload), result_subtree(&warm_payload));
    server.shutdown();
}

/// N client threads hammer submit/poll/fetch concurrently over mixed
/// resolutions; every served payload is bit-identical to the serial batch
/// path of its own request.
#[test]
fn concurrent_clients_get_bit_identical_payloads() {
    let server = FlowServer::start(ServerConfig {
        workers: 4,
        max_inflight: 16,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let resolutions = [10u32, 11, 10, 11, 10, 11];
    let payloads: Vec<(u32, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = resolutions
            .iter()
            .map(|&resolution| {
                scope.spawn(move || {
                    let req = tiny_request(resolution);
                    let id = submit(addr, &req);
                    let done = poll_until_terminal(addr, id);
                    assert_eq!(
                        done.get("state"),
                        Some(&JsonValue::Str("Completed".to_string())),
                        "run {id}"
                    );
                    (resolution, fetch_payload(addr, id))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let oracle10 = result_subtree(&serial_oracle(&tiny_request(10)));
    let oracle11 = result_subtree(&serial_oracle(&tiny_request(11)));
    for (resolution, payload) in &payloads {
        let want = if *resolution == 10 {
            &oracle10
        } else {
            &oracle11
        };
        assert_eq!(
            &result_subtree(payload),
            want,
            "{resolution}-bit concurrent serve diverged from the serial batch path"
        );
    }
    server.shutdown();
}

/// Admission control sheds typed 429s past the in-flight cap, and
/// cancelling a queued run frees its slot (workers: 0 keeps every run
/// deterministically queued).
#[test]
fn admission_cap_sheds_load_and_cancellation_frees_slots() {
    let server = FlowServer::start(ServerConfig {
        workers: 0,
        max_inflight: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let req = tiny_request(10);

    let a = submit(addr, &req);
    let _b = submit(addr, &req);
    let (status, body) =
        http::request(addr, "POST", "/v1/runs", Some(&req.canonical().render())).unwrap();
    assert_eq!(status, 429, "{body}");
    let shed = JsonValue::parse(&body).unwrap();
    assert_eq!(shed.get("max_inflight"), Some(&JsonValue::Num(2.0)));
    assert!(matches!(shed.get("error"), Some(JsonValue::Str(e)) if e.contains("overloaded")));

    // Cancel one queued run: Ready → Failed, slot freed, submit works again.
    let (status, body) = http::request(addr, "DELETE", &format!("/v1/runs/{a}"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = http::request(addr, "GET", &format!("/v1/runs/{a}"), None).unwrap();
    assert_eq!(status, 200);
    let doc = JsonValue::parse(&body).unwrap();
    assert_eq!(
        doc.get("state"),
        Some(&JsonValue::Str("Failed".to_string()))
    );
    assert_eq!(
        doc.get("error"),
        Some(&JsonValue::Str("cancelled".to_string()))
    );
    let _c = submit(addr, &req);

    // A second DELETE on the now-terminal run evicts its record.
    let (status, _) = http::request(addr, "DELETE", &format!("/v1/runs/{a}"), None).unwrap();
    assert_eq!(status, 200);
    let (status, _) = http::request(addr, "GET", &format!("/v1/runs/{a}"), None).unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

/// The typed error surface: 400 on malformed/unsupported submissions,
/// 404 on unknown runs/routes, 405 on bad methods, 409 on premature
/// fetches and illegal cancellations.
#[test]
fn error_codes_are_typed() {
    let server = FlowServer::start(ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http::request(addr, "POST", "/v1/runs", Some("not json")).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("parse error"), "{body}");

    let (status, body) = http::request(addr, "POST", "/v1/runs", Some("{}")).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("spec"), "{body}");

    let bad_process = r#"{"spec":{"resolution":10,"fs":4e7,"full_scale":2,"t_nonoverlap":1e-9,"process":"c999"}}"#;
    let (status, body) = http::request(addr, "POST", "/v1/runs", Some(bad_process)).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("unknown process"), "{body}");

    let bad_resolution = r#"{"spec":{"resolution":40,"fs":4e7,"full_scale":2,"t_nonoverlap":1e-9,"process":"c025"}}"#;
    let (status, body) = http::request(addr, "POST", "/v1/runs", Some(bad_resolution)).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("resolution"), "{body}");

    let (status, _) = http::request(addr, "GET", "/v1/runs/999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http::request(addr, "GET", "/v1/runs/notanumber", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http::request(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http::request(addr, "PUT", "/v1/runs/1", None).unwrap();
    assert_eq!(status, 405);

    // A queued (non-terminal) run: result not ready → 409.
    let id = submit(addr, &tiny_request(10));
    let (status, body) =
        http::request(addr, "GET", &format!("/v1/runs/{id}/result"), None).unwrap();
    assert_eq!(status, 409);
    assert!(body.contains("Ready"), "{body}");
    server.shutdown();
}

/// Shed submissions (past the in-flight cap) carry a `Retry-After`
/// header, and `/healthz` reports the cumulative shed count next to the
/// inflight gauge and the cache statistics.
#[test]
fn shed_responses_carry_retry_after_and_healthz_counts_them() {
    let server = FlowServer::start(ServerConfig {
        workers: 0,
        max_inflight: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let req = tiny_request(10);

    let _queued = submit(addr, &req);
    for _ in 0..2 {
        let (status, headers, body) =
            http::request_full(addr, "POST", "/v1/runs", Some(&req.canonical().render())).unwrap();
        assert_eq!(status, 429, "{body}");
        let retry_after = headers
            .iter()
            .find(|(name, _)| name == "retry-after")
            .map(|(_, value)| value.as_str());
        assert_eq!(
            retry_after,
            Some(http::RETRY_AFTER_SECS.to_string().as_str()),
            "429 must carry Retry-After"
        );
    }

    let (status, body) = http::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let doc = JsonValue::parse(&body).unwrap();
    assert_eq!(doc.get("shed"), Some(&JsonValue::Num(2.0)), "{body}");
    assert_eq!(doc.get("inflight"), Some(&JsonValue::Num(1.0)), "{body}");
    let cache = doc.get("cache").expect("healthz reports cache stats");
    assert_eq!(cache.get("corrupt_dropped"), Some(&JsonValue::Num(0.0)));
    assert_eq!(server.shed_count(), 2);
    server.shutdown();
}

/// One persistent keep-alive client drives a whole submit → poll → fetch
/// run on a single TCP connection, and the served payload is still
/// bit-identical to the serial batch path.
#[test]
fn keep_alive_client_runs_a_full_flow_on_one_connection() {
    let server = FlowServer::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let req = tiny_request(10);

    let mut client = http::Client::new(addr);
    let (status, body) = client
        .request("POST", "/v1/runs", Some(&req.canonical().render()))
        .unwrap();
    assert_eq!(status, 202, "{body}");
    let id = match JsonValue::parse(&body).unwrap().get("run_id") {
        Some(JsonValue::Num(id)) => *id as u64,
        other => panic!("submit reply without run_id: {other:?}"),
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = client
            .request("GET", &format!("/v1/runs/{id}"), None)
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = JsonValue::parse(&body).unwrap();
        if doc.get("state") == Some(&JsonValue::Str("Completed".to_string())) {
            break;
        }
        assert_ne!(
            doc.get("state"),
            Some(&JsonValue::Str("Failed".to_string())),
            "{body}"
        );
        assert!(Instant::now() < deadline, "run never finished: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, payload) = client
        .request("GET", &format!("/v1/runs/{id}/result"), None)
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        result_subtree(&payload),
        result_subtree(&serial_oracle(&req))
    );
    assert_eq!(
        client.connects(),
        1,
        "the whole run must ride one connection ({} requests)",
        client.requests()
    );
    assert!(client.reuse_rate() > 0.5);
    server.shutdown();
}

/// Unique per-test snapshot path under the target tmp dir.
fn snapshot_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("adc-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.snapshot.json", std::process::id()))
}

/// Shutdown saves the cache snapshot; a fresh server restored from it
/// answers a resubmission of the same spec 100 % from the cache — zero
/// cold syntheses across a process restart — and the payload stays
/// bit-identical to the serial batch path.
#[test]
fn snapshot_restart_serves_warm_resubmissions_with_zero_cold_syntheses() {
    let path = snapshot_path("restart");
    let _ = std::fs::remove_file(&path);
    let req = tiny_request(10);

    let server = FlowServer::start(ServerConfig {
        snapshot: Some(path.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let first = poll_until_terminal(server.addr(), submit(server.addr(), &req));
    assert!(stat(&first, "blocks") > 0.0);
    let entries = server.cache_len();
    assert!(entries > 0);
    server.shutdown();
    assert!(path.exists(), "shutdown must write the snapshot");

    let server = FlowServer::start(ServerConfig {
        snapshot: Some(path.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    assert_eq!(server.cache_len(), entries, "restore round-trips entries");
    assert_eq!(server.cache_stats().corrupt_dropped, 0);
    let warm = poll_until_terminal(addr, submit(addr, &req));
    assert_eq!(stat(&warm, "cache_hits"), stat(&warm, "blocks"));
    assert_eq!(
        stat(&warm, "cold"),
        0.0,
        "zero cold syntheses after restart"
    );
    assert_eq!(stat(&warm, "evaluations_spent"), 0.0);
    let payload = fetch_payload(addr, 1);
    assert_eq!(
        result_subtree(&payload),
        result_subtree(&serial_oracle(&req))
    );
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A truncated (unparseable) snapshot file must boot the server cold —
/// drop counted, nothing served from it, no crash — and the server then
/// works normally.
#[test]
fn truncated_snapshot_boots_cold_and_is_counted() {
    let path = snapshot_path("truncated");
    std::fs::write(&path, "{\"format\":\"adc-block-cache-snapshot\",\"ver").unwrap();
    let server = FlowServer::start(ServerConfig {
        snapshot: Some(path.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    assert_eq!(server.cache_len(), 0, "nothing restored from garbage");
    assert_eq!(server.cache_stats().corrupt_dropped, 1, "drop is counted");
    // The cold server still serves correctly.
    let req = tiny_request(10);
    let done = poll_until_terminal(addr, submit(addr, &req));
    assert_eq!(
        done.get("state"),
        Some(&JsonValue::Str("Completed".to_string()))
    );
    assert!(stat(&done, "cold") > 0.0, "boot really was cold");
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Cancelled runs report the session's typed terminal state through the
/// result endpoint too: fetching a cancelled run is a 409 naming the
/// `Failed` state, not a hang or a 200 with a stale payload.
#[test]
fn cancelled_runs_fail_typed_through_the_result_endpoint() {
    let server = FlowServer::start(ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let id = submit(addr, &tiny_request(10));
    let (status, _) = http::request(addr, "DELETE", &format!("/v1/runs/{id}"), None).unwrap();
    assert_eq!(status, 200);
    let (status, body) =
        http::request(addr, "GET", &format!("/v1/runs/{id}/result"), None).unwrap();
    assert_eq!(status, 409);
    assert!(body.contains("Failed"), "{body}");
    server.shutdown();
}
