//! `adc-serve` binary: run the resident flow server, or exercise it end
//! to end with `--smoke` (the CI gate).
//!
//! ```text
//! adc-serve [--addr HOST:PORT] [--workers N] [--max-inflight N] [--verify]
//!           [--snapshot PATH] [--snapshot-every SECS]
//! adc-serve --smoke [--snapshot PATH]
//! ```
//!
//! Smoke mode boots a server on an ephemeral port, checks keep-alive
//! connection reuse, submits a small 10-bit run over real sockets, polls
//! it to `Completed`, diffs the fetched payload's deterministic subtree
//! against the batch oracle, resubmits the same spec against the now-warm
//! cache, and requires the replay to be pure cache hits (zero cold
//! syntheses) — the acceptance contract of the serving layer. With
//! `--snapshot` it additionally shuts the server down (saving the
//! snapshot), boots a **second** server from the same snapshot file, and
//! requires the resubmission against the restarted server to be 100%
//! cache hits with zero cold syntheses — the persistence contract.

use adc_mdac::power::PowerModelParams;
use adc_mdac::specs::AdcSpec;
use adc_serve::http;
use adc_serve::protocol::{render_payload, SubmitRequest, BACKEND_BITS};
use adc_serve::{FlowServer, ServerConfig};
use adc_synth::SynthConfig;
use adc_topopt::enumerate::enumerate_candidates;
use adc_topopt::flow::{run_flow, FlowOptions, FlowRequest};
use adc_topopt::wire::JsonValue;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig::default();
    let mut smoke = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--verify" => config.verify = true,
            "--addr" => config.addr = expect_value(&mut iter, "--addr"),
            "--workers" => config.workers = parse_value(&mut iter, "--workers"),
            "--max-inflight" => config.max_inflight = parse_value(&mut iter, "--max-inflight"),
            "--snapshot" => {
                config.snapshot = Some(PathBuf::from(expect_value(&mut iter, "--snapshot")))
            }
            "--snapshot-every" => {
                config.snapshot_every = Some(Duration::from_secs(parse_value(
                    &mut iter,
                    "--snapshot-every",
                ) as u64));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        run_smoke(config.snapshot);
        return;
    }
    config.addr = if config.addr == "127.0.0.1:0" {
        "127.0.0.1:8750".to_string()
    } else {
        config.addr
    };
    let server = FlowServer::start(config).unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });
    println!("adc-serve listening on http://{}", server.addr());
    println!("  POST /v1/runs  GET /v1/runs/<id>[/result]  DELETE /v1/runs/<id>");
    // Resident: park this thread for the life of the process.
    loop {
        std::thread::park();
    }
}

fn expect_value(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    iter.next().cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_value(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
    expect_value(iter, flag).parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an unsigned integer");
        std::process::exit(2);
    })
}

fn check(ok: bool, what: &str) {
    if ok {
        println!("smoke: PASS {what}");
    } else {
        eprintln!("smoke: FAIL {what}");
        std::process::exit(1);
    }
}

fn poll_to_completed(addr: SocketAddr, run_id: u64) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) =
            http::request(addr, "GET", &format!("/v1/runs/{run_id}"), None).expect("poll");
        check(status == 200, "poll status 200");
        let doc = JsonValue::parse(&body).expect("poll body is JSON");
        match doc.get("state") {
            Some(JsonValue::Str(s)) if s == "Completed" => return doc,
            Some(JsonValue::Str(s)) if s == "Failed" => {
                eprintln!("smoke: FAIL run failed: {body}");
                std::process::exit(1);
            }
            _ => {}
        }
        if Instant::now() > deadline {
            eprintln!("smoke: FAIL poll timed out: {body}");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn smoke_request() -> SubmitRequest {
    SubmitRequest {
        spec: AdcSpec::date05(10),
        cfg: SynthConfig {
            iterations: 60,
            nm_iterations: 20,
            seed: 9,
            ..Default::default()
        },
        options: FlowOptions::default(),
    }
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let (status, reply) = http::request(addr, "POST", "/v1/runs", Some(body)).expect("submit");
    check(status == 202, "submit accepted (202)");
    let doc = JsonValue::parse(&reply).expect("submit reply is JSON");
    match doc.get("run_id") {
        Some(JsonValue::Num(id)) => *id as u64,
        _ => {
            eprintln!("smoke: FAIL submit reply without run_id: {reply}");
            std::process::exit(1);
        }
    }
}

fn run_smoke(snapshot: Option<PathBuf>) {
    let server = FlowServer::start(ServerConfig {
        verify: true,
        snapshot: snapshot.clone(),
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let addr = server.addr();
    println!("smoke: server on {addr}");

    let (status, body) = http::request(addr, "GET", "/healthz", None).expect("healthz");
    check(status == 200 && body.contains("\"ok\""), "healthz");

    // Keep-alive: two requests through one persistent client must cost
    // exactly one TCP connection.
    let mut client = http::Client::new(addr);
    let (first, _) = client.request("GET", "/healthz", None).expect("healthz#1");
    let (second, _) = client.request("GET", "/healthz", None).expect("healthz#2");
    check(
        first == 200 && second == 200 && client.connects() == 1,
        "keep-alive serves two requests on one connection",
    );

    // Cold run: submit, poll to Completed, fetch, diff vs the batch oracle.
    let request = smoke_request();
    let wire_body = request.canonical().render();
    let run_id = submit(addr, &wire_body);
    let status_doc = poll_to_completed(addr, run_id);
    check(
        status_doc.get("stats").is_some(),
        "completed poll carries stats",
    );
    let (code, payload) =
        http::request(addr, "GET", &format!("/v1/runs/{run_id}/result"), None).expect("fetch");
    check(code == 200, "fetch status 200");

    let params = PowerModelParams::calibrated();
    let candidates = enumerate_candidates(request.spec.resolution, BACKEND_BITS);
    let batch = run_flow(
        &FlowRequest::new(&request.spec, &candidates, &params, &request.cfg)
            .with_options(request.options),
        None,
    );
    let oracle = render_payload(&request, &candidates, &batch, true);
    let served = JsonValue::parse(&payload).expect("payload is JSON");
    let oracle_doc = JsonValue::parse(&oracle).expect("oracle is JSON");
    check(
        served.get("result").map(JsonValue::render)
            == oracle_doc.get("result").map(JsonValue::render),
        "served result subtree is bit-identical to the batch oracle",
    );

    // Warm run: same spec again; the resident cache must answer every
    // block without a single cold synthesis.
    let warm_id = submit(addr, &wire_body);
    let warm_doc = poll_to_completed(addr, warm_id);
    let stats = warm_doc.get("stats").expect("warm stats");
    let num = |k: &str| match stats.get(k) {
        Some(JsonValue::Num(v)) => *v,
        _ => f64::NAN,
    };
    check(
        num("cache_hits") == num("blocks") && num("blocks") > 0.0,
        "warm resubmission is 100% cache hits",
    );
    check(
        num("cold") == 0.0,
        "warm resubmission has zero cold syntheses",
    );
    check(
        num("evaluations_spent") == 0.0,
        "warm resubmission spends zero evaluations",
    );

    server.shutdown();

    // Persistence leg: the shutdown above saved the snapshot; a fresh
    // server booted from it must answer the same spec entirely from the
    // restored cache — zero cold syntheses across a process restart.
    if let Some(path) = snapshot {
        check(path.exists(), "shutdown wrote the cache snapshot");
        let server = FlowServer::start(ServerConfig {
            verify: true,
            snapshot: Some(path),
            ..ServerConfig::default()
        })
        .expect("snapshot-boot bind");
        let addr = server.addr();
        check(
            server.cache_len() > 0 && server.cache_stats().corrupt_dropped == 0,
            "restart restored snapshot entries with zero corrupt drops",
        );
        let restart_id = submit(addr, &wire_body);
        let restart_doc = poll_to_completed(addr, restart_id);
        let stats = restart_doc.get("stats").expect("restart stats");
        let num = |k: &str| match stats.get(k) {
            Some(JsonValue::Num(v)) => *v,
            _ => f64::NAN,
        };
        check(
            num("cache_hits") == num("blocks") && num("blocks") > 0.0,
            "restarted server answers resubmission 100% from the snapshot",
        );
        check(
            num("cold") == 0.0,
            "restarted server performs zero cold syntheses",
        );
        check(
            num("evaluations_spent") == 0.0,
            "restarted server spends zero evaluations",
        );
        let (code, restart_payload) =
            http::request(addr, "GET", &format!("/v1/runs/{restart_id}/result"), None)
                .expect("restart fetch");
        check(code == 200, "restart fetch status 200");
        let restart_served = JsonValue::parse(&restart_payload).expect("restart payload is JSON");
        check(
            restart_served.get("result").map(JsonValue::render)
                == oracle_doc.get("result").map(JsonValue::render),
            "restarted result subtree is bit-identical to the batch oracle",
        );
        server.shutdown();
    }
    println!("smoke: all checks passed");
}
