//! Minimal HTTP/1.1 over `std::net`: one request per connection,
//! `Connection: close` semantics, `Content-Length` bodies only.
//!
//! The workspace is registry-free (no axum/tokio/hyper), and the wire
//! protocol needs exactly this much HTTP: a request line, a handful of
//! headers, a JSON body each way. Both the server loop and the in-process
//! client (smoke mode, integration tests, `bench_serve`) live here so the
//! two ends cannot drift.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Cap on header block and body sizes: a malformed or hostile client must
/// not balloon server memory.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path with no query handling (the API does not use queries).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request off the stream. `Ok(None)` means the peer closed
/// before sending a request line.
///
/// # Errors
/// Propagates socket errors; malformed framing surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_ascii_uppercase(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed inside headers",
            ));
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header block too large",
            ));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

/// Writes a complete response and flushes. The body is always JSON (the
/// protocol has no other content type).
///
/// # Errors
/// Propagates socket errors.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The matching in-process client: sends one request, reads the full
/// response, returns `(status, body)`.
///
/// # Errors
/// Socket errors or a malformed status line.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let mut content_length = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))
}
