//! Minimal HTTP/1.1 over `std::net` with keep-alive: `Content-Length`
//! bodies only, persistent connections by default, `Connection: close`
//! honoured both ways.
//!
//! The workspace is registry-free (no axum/tokio/hyper), and the wire
//! protocol needs exactly this much HTTP: a request line, a handful of
//! headers, a JSON body each way. Both the server loop and the in-process
//! clients (smoke mode, integration tests, `bench_serve`) live here so
//! the two ends cannot drift.
//!
//! Two clients are provided: the one-shot [`request`] (one TCP connection
//! per call, `connection: close` — the historical behaviour, still what
//! the admission/cancellation tests want), and the persistent [`Client`]
//! that reuses one connection across requests and transparently
//! reconnects when the server hangs up (idle timeout or per-connection
//! request bound) — the path `bench_serve` and smoke mode measure.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// Cap on header block and body sizes: a malformed or hostile client must
/// not balloon server memory.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Seconds advertised in the `Retry-After` header of every 429 response:
/// shed submissions are retryable as soon as one in-flight run finishes,
/// which under the default budgets is on the order of a second.
pub const RETRY_AFTER_SECS: u32 = 1;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path with no query handling (the API does not use queries).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the peer wants the connection kept open afterwards
    /// (HTTP/1.1 default unless it sent `connection: close`).
    pub keep_alive: bool,
}

/// Reads one request off a persistent reader. `Ok(None)` means the peer
/// closed (or went idle past a configured read timeout) between requests
/// — the clean end of a keep-alive session.
///
/// # Errors
/// Propagates socket errors; malformed framing surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        // An idle read timeout between requests is a clean close, not an
        // error (WouldBlock on Unix, TimedOut on Windows).
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(None)
        }
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_ascii_uppercase(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let mut content_length = 0usize;
    let mut keep_alive = true;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed inside headers",
            ));
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header block too large",
            ));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Writes a complete response and flushes. The body is always JSON (the
/// protocol has no other content type). `keep_alive` selects the
/// `connection` header; every 429 additionally carries
/// `retry-after: `[`RETRY_AFTER_SECS`] (the whole protocol's only 429 is
/// the admission shed, which is retryable by construction).
///
/// # Errors
/// Propagates socket errors.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry_after = if status == 429 {
        format!("retry-after: {RETRY_AFTER_SECS}\r\n")
    } else {
        String::new()
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{retry_after}connection: {connection}\r\n\r\n",
        body.len()
    );
    // One write per response: on a keep-alive connection a split
    // head/body write is two small TCP segments, and Nagle + delayed ACK
    // turns that into a ~40 ms stall per message.
    let mut message = head.into_bytes();
    message.extend_from_slice(body.as_bytes());
    stream.write_all(&message)?;
    stream.flush()
}

/// One parsed response: status, headers (lower-cased names), body text.
pub type Response = (u16, Vec<(String, String)>, String);

fn read_response<R: BufRead>(reader: &mut R) -> io::Result<Response> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse::<usize>().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    String::from_utf8(body)
        .map(|text| (status, headers, text))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))
}

/// One-shot client: opens a fresh connection, sends one request with
/// `connection: close`, reads the full response, returns
/// `(status, body)`.
///
/// # Errors
/// Socket errors or a malformed status line.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    request_full(addr, method, path, body).map(|(status, _, body)| (status, body))
}

/// [`request`] but returning the response headers too (lower-cased
/// names) — what the `Retry-After` tests inspect.
///
/// # Errors
/// Socket errors or a malformed status line.
pub fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    let mut message = head.into_bytes();
    message.extend_from_slice(payload.as_bytes());
    stream.write_all(&message)?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// A persistent keep-alive client: one TCP connection reused across
/// requests, transparently re-established when the server hangs up
/// (per-connection request bound, idle timeout, or restart). Tracks how
/// many TCP connects its requests cost, so callers can report the
/// connection-reuse rate keep-alive buys.
pub struct Client {
    addr: SocketAddr,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
    requests: usize,
    connects: usize,
}

impl Client {
    /// A client for `addr`; connects lazily on the first request.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            conn: None,
            requests: 0,
            connects: 0,
        }
    }

    /// Requests issued through this client.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// TCP connections those requests cost.
    #[must_use]
    pub fn connects(&self) -> usize {
        self.connects
    }

    /// Fraction of requests served on a reused connection (0.0 before the
    /// first request).
    #[must_use]
    pub fn reuse_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            1.0 - self.connects as f64 / self.requests as f64
        }
    }

    fn ensure_conn(&mut self) -> io::Result<&mut (TcpStream, BufReader<TcpStream>)> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.connects += 1;
            self.conn = Some((stream, reader));
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }

    fn send_once(&mut self, method: &str, path: &str, payload: &str) -> io::Result<(u16, String)> {
        let addr = self.addr;
        let (stream, reader) = self.ensure_conn()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            payload.len()
        );
        let mut message = head.into_bytes();
        message.extend_from_slice(payload.as_bytes());
        stream.write_all(&message)?;
        stream.flush()?;
        let (status, headers, body) = read_response(reader)?;
        let server_closes = headers
            .iter()
            .any(|(name, value)| name == "connection" && value.eq_ignore_ascii_case("close"));
        if server_closes {
            self.conn = None;
        }
        Ok((status, body))
    }

    /// Sends one request on the persistent connection, reconnecting and
    /// retrying once if a **reused** connection turns out to be stale
    /// (the server closed it between requests).
    ///
    /// # Errors
    /// Socket errors on a fresh connection, or malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        self.requests += 1;
        let payload = body.unwrap_or("").to_string();
        let reused = self.conn.is_some();
        match self.send_once(method, path, &payload) {
            Ok(reply) => Ok(reply),
            Err(_) if reused => {
                // The reused connection was stale; a fresh one gets
                // exactly one more try.
                self.conn = None;
                self.send_once(method, path, &payload)
            }
            Err(e) => Err(e),
        }
    }
}
