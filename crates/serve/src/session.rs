//! Per-run session state machine: `Parsed → Elaborated → Ready → Running →
//! Completed/Failed`, with illegal transitions rejected as typed errors
//! rather than silently reordered.
//!
//! Cancellation rides the same machine: a queued run is failed from
//! `Ready` (before any worker claims it); a `Running` run owns its
//! wall-clock budget through the flow's `Deadline` plumbing and reaches a
//! terminal state on its own.

use std::fmt;

/// Lifecycle of one submitted flow run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionState {
    /// The request body parsed as JSON.
    Parsed,
    /// The spec validated against the server's process/resolution limits.
    Elaborated,
    /// Candidates enumerated; the run is queued for a worker.
    Ready,
    /// A worker owns the run and synthesis is in flight.
    Running,
    /// The run finished and its payload is in the store.
    Completed,
    /// The run was cancelled, shed, or died with a typed error.
    Failed,
}

impl SessionState {
    /// Every state, in lifecycle order (test enumeration support).
    pub const ALL: [SessionState; 6] = [
        SessionState::Parsed,
        SessionState::Elaborated,
        SessionState::Ready,
        SessionState::Running,
        SessionState::Completed,
        SessionState::Failed,
    ];

    /// Whether the state admits no further transitions.
    pub fn is_terminal(self) -> bool {
        matches!(self, SessionState::Completed | SessionState::Failed)
    }

    /// Whether `self → to` is a legal lifecycle edge.
    pub fn can_advance(self, to: SessionState) -> bool {
        use SessionState::*;
        matches!(
            (self, to),
            (Parsed, Elaborated)
                | (Elaborated, Ready)
                | (Ready, Running)
                | (Ready, Failed)
                | (Running, Completed)
                | (Running, Failed)
        )
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SessionState::Parsed => "Parsed",
            SessionState::Elaborated => "Elaborated",
            SessionState::Ready => "Ready",
            SessionState::Running => "Running",
            SessionState::Completed => "Completed",
            SessionState::Failed => "Failed",
        };
        write!(f, "{name}")
    }
}

/// Typed rejection of a session-machine violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// State the session was in.
    pub from: SessionState,
    /// State the caller tried to force.
    pub to: SessionState,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal session transition {} -> {}", self.from, self.to)
    }
}

impl std::error::Error for IllegalTransition {}

/// One run's live state, advanced only along legal edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    state: SessionState,
}

impl Session {
    /// A freshly parsed submission.
    pub fn new() -> Session {
        Session {
            state: SessionState::Parsed,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Advances along a legal edge.
    ///
    /// # Errors
    /// [`IllegalTransition`] (the state is left untouched) on any edge not
    /// in the lifecycle diagram — including every edge out of a terminal
    /// state and every self-loop.
    pub fn advance(&mut self, to: SessionState) -> Result<SessionState, IllegalTransition> {
        if self.state.can_advance(to) {
            self.state = to;
            Ok(to)
        } else {
            Err(IllegalTransition {
                from: self.state,
                to,
            })
        }
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full legal edge set, nothing else.
    const LEGAL: [(SessionState, SessionState); 6] = [
        (SessionState::Parsed, SessionState::Elaborated),
        (SessionState::Elaborated, SessionState::Ready),
        (SessionState::Ready, SessionState::Running),
        (SessionState::Ready, SessionState::Failed),
        (SessionState::Running, SessionState::Completed),
        (SessionState::Running, SessionState::Failed),
    ];

    /// Exhaustive 6×6 property: every pair is accepted iff it is a legal
    /// lifecycle edge, and rejections are typed, loss-free and
    /// state-preserving.
    #[test]
    fn every_illegal_transition_is_rejected() {
        for from in SessionState::ALL {
            for to in SessionState::ALL {
                let mut s = Session { state: from };
                let legal = LEGAL.contains(&(from, to));
                match s.advance(to) {
                    Ok(next) => {
                        assert!(legal, "{from} -> {to} must be rejected");
                        assert_eq!(next, to);
                        assert_eq!(s.state(), to);
                    }
                    Err(e) => {
                        assert!(!legal, "{from} -> {to} must be accepted");
                        assert_eq!(e, IllegalTransition { from, to });
                        assert_eq!(s.state(), from, "rejection must not move the state");
                    }
                }
            }
        }
    }

    /// Terminal states admit no exit at all (subset of the exhaustive
    /// sweep, stated separately because eviction logic relies on it).
    #[test]
    fn terminal_states_are_absorbing() {
        for from in [SessionState::Completed, SessionState::Failed] {
            assert!(from.is_terminal());
            for to in SessionState::ALL {
                assert!(!from.can_advance(to), "{from} -> {to}");
            }
        }
    }

    /// Any legal walk from `Parsed` reaches a terminal state in at most
    /// four steps and never revisits a state.
    #[test]
    fn legal_walks_terminate_without_cycles() {
        fn walk(state: SessionState, mut seen: Vec<SessionState>, depth: usize) {
            assert!(depth <= 4, "walk exceeded the lifecycle depth: {seen:?}");
            assert!(!seen.contains(&state), "cycle through {state}: {seen:?}");
            seen.push(state);
            let successors: Vec<SessionState> = SessionState::ALL
                .into_iter()
                .filter(|&to| state.can_advance(to))
                .collect();
            if successors.is_empty() {
                assert!(state.is_terminal(), "dead end in a non-terminal {state}");
                return;
            }
            for to in successors {
                walk(to, seen.clone(), depth + 1);
            }
        }
        walk(SessionState::Parsed, Vec::new(), 0);
    }
}
