//! The flow-request wire protocol: request parsing and the **pure**
//! result-payload renderer.
//!
//! The renderer is one function over `(request, SynthesisRun)` used by the
//! server worker, the `--smoke` oracle and the integration tests alike, so
//! "server payload ≡ batch payload" is a property of shared code, not of
//! two implementations kept in sync by hand.
//!
//! Payload layout (top-level keys):
//! - `request` — canonical echo of the submitted spec/config/options;
//! - `stats` — this run's [`RunStats`](adc_topopt::flow::RunStats) (cache-warmth dependent by design:
//!   a warm replay reports hits, not cold work);
//! - `health` — the `run_health_table` rendering of the same stats;
//! - `result` — everything **deterministic given the request**: ranked
//!   candidates, surviving candidates, synthesized blocks (sizings,
//!   performance, costs), failures (kind/attempts, no wall-clock), and
//!   the optional chain-verification report. Bit-identity tests compare
//!   this subtree byte for byte.

use adc_mdac::power::PowerModelParams;
use adc_mdac::specs::AdcSpec;
use adc_synth::SynthConfig;
use adc_topopt::cache::SharedCache;
use adc_topopt::enumerate::{enumerate_candidates, Candidate};
use adc_topopt::executor::FailureKind;
use adc_topopt::flow::{
    run_flow_shared, surviving_candidates, FlowOptions, FlowRequest, ResolutionRun, SynthesisRun,
};
use adc_topopt::optimize::optimize_topology;
use adc_topopt::report::run_health_table;
use adc_topopt::verify::{verify_candidate, VerifyOptions};
use adc_topopt::wire::{
    flow_options_from_json, flow_options_to_json, run_stats_to_json, spec_from_json, spec_to_json,
    synth_config_from_json, synth_config_to_json, verification_to_json, JsonValue, WireError,
};

/// Backend flash resolution the enumeration closes against (the paper's
/// 7-bit backend; every batch workload in the repo uses the same).
pub const BACKEND_BITS: u32 = 7;

/// A parsed submission.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Target ADC specification.
    pub spec: AdcSpec,
    /// Synthesis budget/seed (defaults applied field-wise).
    pub cfg: SynthConfig,
    /// Fault-tolerance/budget knobs (defaults applied field-wise).
    pub options: FlowOptions,
}

impl SubmitRequest {
    /// Canonical re-render of the request: submitting this echo again is
    /// byte-for-byte idempotent.
    pub fn canonical(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("spec".to_string(), spec_to_json(&self.spec)),
            ("config".to_string(), synth_config_to_json(&self.cfg)),
            ("options".to_string(), flow_options_to_json(&self.options)),
        ])
    }
}

/// Parses a submission body: `{"spec": {...}, "config": {...},
/// "options": {...}}` with `config`/`options` optional.
///
/// # Errors
/// A typed [`WireError`] naming the offending field.
pub fn parse_submit(body: &str) -> Result<SubmitRequest, WireError> {
    let doc = JsonValue::parse(body)?;
    let spec_field = doc
        .get("spec")
        .ok_or_else(|| WireError::MissingField("spec".to_string()))?;
    let spec = spec_from_json(spec_field)?;
    let cfg = match doc.get("config") {
        Some(v) => synth_config_from_json(v)?,
        None => SynthConfig::default(),
    };
    let options = match doc.get("options") {
        Some(v) => flow_options_from_json(v)?,
        None => FlowOptions::default(),
    };
    Ok(SubmitRequest { spec, cfg, options })
}

/// Spec sanity limits the server elaborates against (the session edge
/// `Parsed → Elaborated`).
///
/// # Errors
/// A human-readable reason; the run is never admitted.
pub fn elaborate(spec: &AdcSpec) -> Result<(), String> {
    if !(6..=16).contains(&spec.resolution) {
        return Err(format!(
            "resolution {} outside the supported 6..=16 bit range",
            spec.resolution
        ));
    }
    if !(spec.fs.is_finite() && spec.fs > 0.0) {
        return Err(format!("sampling rate {} is not positive", spec.fs));
    }
    if !(spec.full_scale.is_finite() && spec.full_scale > 0.0) {
        return Err(format!("full scale {} is not positive", spec.full_scale));
    }
    if !(spec.t_nonoverlap.is_finite() && spec.t_nonoverlap >= 0.0) {
        return Err(format!(
            "non-overlap time {} is not non-negative",
            spec.t_nonoverlap
        ));
    }
    Ok(())
}

fn failure_kind_str(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Panic => "panic",
        FailureKind::Timeout => "timeout",
        FailureKind::Error => "error",
    }
}

/// The deterministic `result` subtree (see module docs).
fn result_json(
    req: &SubmitRequest,
    candidates: &[Candidate],
    run: &SynthesisRun,
    verify: bool,
) -> JsonValue {
    let params = PowerModelParams::calibrated();
    let report = optimize_topology(&req.spec, &params);
    let ranked: Vec<JsonValue> = report
        .rows
        .iter()
        .map(|row| {
            JsonValue::Obj(vec![
                (
                    "candidate".to_string(),
                    JsonValue::Str(row.candidate.to_string()),
                ),
                ("total_power".to_string(), JsonValue::num(row.total_power)),
                (
                    "stage_power".to_string(),
                    JsonValue::Arr(row.stage_power.iter().map(|&p| JsonValue::num(p)).collect()),
                ),
            ])
        })
        .collect();
    let survivors = surviving_candidates(&req.spec, candidates, run);
    let survivor_names: Vec<JsonValue> = survivors
        .iter()
        .map(|c| JsonValue::Str(c.to_string()))
        .collect();
    let blocks: Vec<JsonValue> = run
        .blocks
        .iter()
        .map(|b| {
            JsonValue::Obj(vec![
                ("m".to_string(), JsonValue::Num(f64::from(b.key.0))),
                ("bits".to_string(), JsonValue::Num(f64::from(b.key.1))),
                ("retargeted".to_string(), JsonValue::Bool(b.retargeted)),
                ("feasible".to_string(), JsonValue::Bool(b.result.feasible)),
                (
                    "evaluations".to_string(),
                    JsonValue::Num(b.result.evaluations as f64),
                ),
                ("best_cost".to_string(), JsonValue::num(b.result.best_cost)),
                (
                    "best_x".to_string(),
                    JsonValue::Arr(b.result.best_x.iter().map(|&x| JsonValue::num(x)).collect()),
                ),
                (
                    "perf".to_string(),
                    JsonValue::Obj(
                        b.result
                            .best_perf
                            .iter()
                            .map(|(k, v)| (k.to_string(), JsonValue::num(v)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let failures: Vec<JsonValue> = run
        .failures
        .iter()
        .map(|c| {
            JsonValue::Obj(vec![
                ("m".to_string(), JsonValue::Num(f64::from(c.key.0))),
                ("bits".to_string(), JsonValue::Num(f64::from(c.key.1))),
                (
                    "kind".to_string(),
                    JsonValue::Str(failure_kind_str(c.failure.kind).to_string()),
                ),
                (
                    "message".to_string(),
                    JsonValue::Str(c.failure.message.clone()),
                ),
                (
                    "attempts".to_string(),
                    JsonValue::Num(c.failure.attempts as f64),
                ),
            ])
        })
        .collect();
    // Chain-level sign-off of the best surviving candidate (small-signal
    // leg only: the clocked transient belongs to offline sign-off, not a
    // polling loop).
    let verify_json = if verify {
        let best = report
            .rows
            .iter()
            .find(|row| survivors.contains(&row.candidate));
        match best {
            Some(row) => {
                let opts = VerifyOptions {
                    tran: None,
                    ..VerifyOptions::default()
                };
                match verify_candidate(&req.spec, &row.candidate, &run.blocks, &params, &opts) {
                    Ok(v) => verification_to_json(&v),
                    Err(e) => JsonValue::Obj(vec![("error".to_string(), JsonValue::Str(e))]),
                }
            }
            None => JsonValue::Null,
        }
    } else {
        JsonValue::Null
    };
    JsonValue::Obj(vec![
        ("ranked".to_string(), JsonValue::Arr(ranked)),
        ("survivors".to_string(), JsonValue::Arr(survivor_names)),
        ("blocks".to_string(), JsonValue::Arr(blocks)),
        ("failures".to_string(), JsonValue::Arr(failures)),
        ("verify".to_string(), verify_json),
    ])
}

/// Renders the full payload for one finished run. Pure in `(req, run,
/// verify)` apart from the warmth-dependent `stats`/`health` sections.
pub fn render_payload(
    req: &SubmitRequest,
    candidates: &[Candidate],
    run: &SynthesisRun,
    verify: bool,
) -> String {
    payload_with_result(req, run, result_json(req, candidates, run, verify))
}

/// Assembles the payload around an already-built `result` subtree (fresh
/// or memoized — the bytes are identical either way).
fn payload_with_result(req: &SubmitRequest, run: &SynthesisRun, result: JsonValue) -> String {
    let health_run = ResolutionRun {
        resolution: req.spec.resolution,
        blocks: run.blocks.clone(),
        stats: run.stats,
        failures: run.failures.clone(),
        wall_seconds: 0.0,
    };
    JsonValue::Obj(vec![
        ("request".to_string(), req.canonical()),
        ("stats".to_string(), run_stats_to_json(&run.stats)),
        (
            "health".to_string(),
            JsonValue::Str(run_health_table(std::slice::from_ref(&health_run))),
        ),
        ("result".to_string(), result),
    ])
    .render()
}

/// Decides the terminal session state of a finished run: `Completed` when
/// the ranking survives (possibly degraded), `Failed` when every
/// candidate lost a block.
///
/// # Errors
/// The typed reason (first casualty's
/// [`FlowError`](adc_topopt::flow::FlowError) display) when nothing
/// survived.
pub fn outcome(spec: &AdcSpec, candidates: &[Candidate], run: &SynthesisRun) -> Result<(), String> {
    if run.failures.is_empty() {
        return Ok(());
    }
    if surviving_candidates(spec, candidates, run).is_empty() {
        let reason = match run.clone().into_result() {
            Err(e) => e.to_string(),
            Ok(_) => "no surviving candidate".to_string(),
        };
        return Err(reason);
    }
    Ok(())
}

/// Memo of `result` subtrees keyed by canonical request (plus the verify
/// flag).
///
/// Under [`CachePolicy::Reproducible`](adc_topopt::cache::CachePolicy)
/// the `result` subtree is a **pure function of the canonical request** —
/// that is exactly the bit-identity contract the oracle tests pin — so a
/// warm resubmission can reuse the subtree the first run computed and
/// skip ranking, chain verification, and result rendering entirely. The
/// per-run `stats` and `health` sections are still rendered fresh (they
/// are cache-warmth dependent by design). Fault-affected runs (any
/// failure or recovery) neither consult nor populate the memo, so a
/// chaos-degraded run always renders its own subtree. Bounded: past
/// [`ResultMemo::CAP`] distinct requests, new subtrees are computed but
/// not recorded.
#[derive(Default)]
pub struct ResultMemo {
    map: std::sync::Mutex<std::collections::HashMap<String, JsonValue>>,
}

impl ResultMemo {
    /// Distinct canonical requests memoized at most.
    pub const CAP: usize = 128;

    /// An empty memo.
    #[must_use]
    pub fn new() -> ResultMemo {
        ResultMemo::default()
    }

    fn get(&self, key: &str) -> Option<JsonValue> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    fn put(&self, key: String, value: JsonValue) {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if map.len() < Self::CAP {
            map.insert(key, value);
        }
    }
}

/// Runs one request against the sharded shared cache and renders its
/// payload — the exact code path of a server worker, callable with a
/// fresh cache as the batch oracle.
pub fn run_and_render(
    req: &SubmitRequest,
    cache: &SharedCache,
    verify: bool,
) -> (SynthesisRun, String) {
    let params = PowerModelParams::calibrated();
    let candidates = enumerate_candidates(req.spec.resolution, BACKEND_BITS);
    let flow_req =
        FlowRequest::new(&req.spec, &candidates, &params, &req.cfg).with_options(req.options);
    let run = run_flow_shared(&flow_req, cache);
    let payload = render_payload(req, &candidates, &run, verify);
    (run, payload)
}

/// [`run_and_render`] with a [`ResultMemo`]: the server worker's hot
/// path. A clean run of a request seen before (Reproducible policy only)
/// reuses the memoized `result` subtree instead of re-ranking,
/// re-verifying, and re-rendering it.
pub fn run_and_render_memo(
    req: &SubmitRequest,
    cache: &SharedCache,
    verify: bool,
    memo: &ResultMemo,
) -> (SynthesisRun, String) {
    use adc_topopt::cache::CachePolicy;

    let params = PowerModelParams::calibrated();
    let candidates = enumerate_candidates(req.spec.resolution, BACKEND_BITS);
    let flow_req =
        FlowRequest::new(&req.spec, &candidates, &params, &req.cfg).with_options(req.options);
    let run = run_flow_shared(&flow_req, cache);
    // Memoization is sound only where determinism is a contract: the
    // Reproducible policy, and a run the fault ladder never touched.
    let clean = cache.policy() == CachePolicy::Reproducible
        && run.failures.is_empty()
        && run.stats.recovered == 0
        && run.stats.failed == 0;
    let key = format!("{}#verify={verify}", req.canonical().render());
    let result = match clean.then(|| memo.get(&key)).flatten() {
        Some(result) => result,
        None => {
            let result = result_json(req, &candidates, &run, verify);
            if clean {
                memo.put(key, result.clone());
            }
            result
        }
    };
    let payload = payload_with_result(req, &run, result);
    (run, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_topopt::cache::CachePolicy;
    use adc_topopt::flow::run_flow;

    fn tiny_request(resolution: u32) -> SubmitRequest {
        SubmitRequest {
            spec: AdcSpec::date05(resolution),
            cfg: SynthConfig {
                iterations: 8,
                nm_iterations: 2,
                seed: 13,
                ..Default::default()
            },
            options: FlowOptions::default(),
        }
    }

    #[test]
    fn submit_round_trips_through_canonical_echo() {
        let req = tiny_request(10);
        let echo = req.canonical().render();
        let back = parse_submit(&echo).unwrap();
        assert_eq!(back.spec, req.spec);
        assert_eq!(back.cfg, req.cfg);
        assert_eq!(back.options, req.options);
        assert_eq!(back.canonical().render(), echo, "idempotent echo");
    }

    #[test]
    fn submit_rejections_are_typed() {
        assert!(matches!(
            parse_submit("{}").unwrap_err(),
            WireError::MissingField(f) if f == "spec"
        ));
        assert!(matches!(
            parse_submit("not json").unwrap_err(),
            WireError::Parse { .. }
        ));
    }

    #[test]
    fn elaboration_limits_are_enforced() {
        assert!(elaborate(&AdcSpec::date05(10)).is_ok());
        let mut spec = AdcSpec::date05(10);
        spec.resolution = 40;
        assert!(elaborate(&spec).unwrap_err().contains("resolution"));
        let mut spec = AdcSpec::date05(10);
        spec.fs = -1.0;
        assert!(elaborate(&spec).unwrap_err().contains("sampling rate"));
    }

    /// The shared-cache worker path renders byte-for-byte what the
    /// exclusive batch path renders (the oracle contract every serving
    /// test builds on), at every shard count.
    #[test]
    fn worker_payload_matches_batch_oracle() {
        let req = tiny_request(10);
        let params = PowerModelParams::calibrated();
        let candidates = enumerate_candidates(req.spec.resolution, BACKEND_BITS);
        let batch = run_flow(
            &FlowRequest::new(&req.spec, &candidates, &params, &req.cfg).serial(),
            None,
        );
        let oracle = render_payload(&req, &candidates, &batch, false);
        let oracle_doc = JsonValue::parse(&oracle).unwrap();

        for shards in [1, 4, 8] {
            let cache = SharedCache::new(CachePolicy::Reproducible, shards);
            let (_, served) = run_and_render(&req, &cache, false);
            let served_doc = JsonValue::parse(&served).unwrap();
            assert_eq!(
                served_doc.get("result").unwrap().render(),
                oracle_doc.get("result").unwrap().render(),
                "deterministic subtree must be bit-identical to the serial batch path ({shards} shards)"
            );
            assert_eq!(
                served_doc.get("request").unwrap().render(),
                oracle_doc.get("request").unwrap().render()
            );
        }
    }
}
