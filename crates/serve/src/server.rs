//! The resident flow server: accept loop, bounded worker pool, one
//! persistent **sharded** [`SharedCache`], admission control, snapshot
//! persistence, and the REST-ish routing over [`crate::http`].
//!
//! ## Endpoints
//!
//! | method + path            | behaviour |
//! |--------------------------|-----------|
//! | `GET /healthz`           | liveness + inflight/shed/store/cache gauges |
//! | `POST /v1/runs`          | submit a spec; `202 {run_id}` or typed `429` |
//! | `GET /v1/runs/{id}`      | poll session state + stats |
//! | `GET /v1/runs/{id}/result` | fetch the payload (`409` until terminal) |
//! | `DELETE /v1/runs/{id}`   | cancel a queued run / evict a terminal one |
//!
//! ## Concurrency shape
//!
//! One accept thread spawns a thread per connection; connections are
//! **keep-alive** (HTTP/1.1 default), each serving up to
//! [`MAX_REQUESTS_PER_CONNECTION`] requests and closing quietly after
//! [`IDLE_READ_TIMEOUT`] of silence. Worker threads block on a condvar'd
//! queue of admitted `run_id`s; each claims a run (`Ready → Running`),
//! executes it against the shared cache via
//! [`run_flow_shared`](adc_topopt::flow::run_flow_shared) — the cache is
//! sharded by block fingerprint, so a lookup or commit locks one shard
//! only, never across synthesis and never the whole cache. Connection
//! threads touch the store's own lock only, so polling and fetching never
//! block the pool.
//!
//! ## Persistence
//!
//! With [`ServerConfig::snapshot`] set, the cache is restored from the
//! snapshot file on boot (integrity-checked entry by entry; corrupt or
//! version-mismatched entries are dropped and counted, never served) and
//! saved on shutdown — atomically, via a temp file and rename — plus
//! periodically when [`ServerConfig::snapshot_every`] is set. A restarted
//! server therefore answers warm resubmissions from the snapshot with
//! zero cold syntheses.

use crate::http::{read_request, write_response, Request};
use crate::protocol::{self, SubmitRequest};
use crate::session::{Session, SessionState};
use crate::store::{ResultStore, RunRecord, StoreError};
use adc_topopt::cache::{CachePolicy, CacheStats, SharedCache, DEFAULT_SHARDS};
use adc_topopt::wire::{cache_snapshot_restore, cache_snapshot_to_json, JsonValue};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Requests served on one connection before the server closes it (a
/// fairness/leak bound, not a protocol limit — clients reconnect).
pub const MAX_REQUESTS_PER_CONNECTION: usize = 128;

/// How long a keep-alive connection may sit idle between requests before
/// the server closes it quietly.
pub const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads draining the run queue (0 is legal: runs queue up
    /// `Ready` until cancelled — the deterministic admission-test mode).
    pub workers: usize,
    /// In-flight (admitted, non-terminal) run cap; beyond it submissions
    /// shed with a typed 429.
    pub max_inflight: usize,
    /// Resident record cap of the [`ResultStore`].
    pub capacity: usize,
    /// Shared-cache policy. [`CachePolicy::Reproducible`] keeps every
    /// served result bit-identical to a batch run of the same request.
    pub cache_policy: CachePolicy,
    /// Shard count of the shared cache (clamped to at least 1). Placement
    /// is by block fingerprint, so behaviour is identical at any count;
    /// more shards only reduce lock contention.
    pub cache_shards: usize,
    /// Attach the chain-verification report (small-signal leg) of the
    /// best surviving candidate to each payload.
    pub verify: bool,
    /// Cache snapshot file: restored on boot (missing file is a cold
    /// boot, not an error), saved atomically on shutdown.
    pub snapshot: Option<PathBuf>,
    /// Additionally save the snapshot at this interval while running
    /// (ignored without [`ServerConfig::snapshot`]).
    pub snapshot_every: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_inflight: 8,
            capacity: 64,
            cache_policy: CachePolicy::Reproducible,
            cache_shards: DEFAULT_SHARDS,
            verify: false,
            snapshot: None,
            snapshot_every: None,
        }
    }
}

struct Shared {
    config: ServerConfig,
    cache: SharedCache,
    /// Deterministic `result`-subtree memo (see [`protocol::ResultMemo`]):
    /// warm resubmissions skip ranking/verification/rendering.
    memo: protocol::ResultMemo,
    store: ResultStore,
    queue: Mutex<VecDeque<u64>>,
    available: Condvar,
    /// Admitted, non-terminal runs (admission-control gauge).
    inflight: AtomicUsize,
    /// Submissions shed with a 429 since boot (cumulative).
    shed: AtomicU64,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

/// A running server; dropping it without [`FlowServer::shutdown`] leaves
/// the threads alive until process exit.
pub struct FlowServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    janitor_stop: Option<mpsc::Sender<()>>,
    janitor: Option<JoinHandle<()>>,
}

impl FlowServer {
    /// Binds, restores the cache snapshot (when configured), spawns the
    /// accept thread and the worker pool, and returns once the server is
    /// reachable.
    ///
    /// # Errors
    /// Socket bind errors. A missing, truncated, or corrupted snapshot is
    /// **not** an error: bad entries are dropped and counted
    /// (`corrupt_dropped` on `/healthz`), and the server boots cold.
    pub fn start(config: ServerConfig) -> io::Result<FlowServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: SharedCache::new(config.cache_policy, config.cache_shards),
            memo: protocol::ResultMemo::new(),
            store: ResultStore::new(config.capacity),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            inflight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            config,
        });
        load_snapshot(&shared);
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let (janitor_stop, janitor) = match shared.config.snapshot_every {
            Some(every) if shared.config.snapshot.is_some() => {
                let (tx, rx) = mpsc::channel::<()>();
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || loop {
                    match rx.recv_timeout(every) {
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            let _ = save_snapshot(&shared);
                        }
                        // Sender dropped (shutdown) or explicit stop.
                        _ => return,
                    }
                });
                (Some(tx), Some(handle))
            }
            _ => (None, None),
        };
        Ok(FlowServer {
            addr,
            shared,
            accept: Some(accept),
            workers,
            janitor_stop,
            janitor,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Merged statistics of the sharded cache (also on `/healthz`).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Entries resident in the sharded cache.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Submissions shed with a 429 since boot.
    pub fn shed_count(&self) -> u64 {
        self.shared.shed.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains the workers, joins every thread, and —
    /// when a snapshot path is configured — saves the final cache
    /// snapshot. Runs already `Running` finish first (their budgets bound
    /// the wait), so the snapshot includes their commits.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        drop(self.janitor_stop.take());
        if let Some(handle) = self.janitor.take() {
            let _ = handle.join();
        }
        let _ = save_snapshot(&self.shared);
    }
}

/// Restores the cache from the configured snapshot file. Absent file:
/// cold boot. Unparseable file: cold boot, counted as one corrupt drop.
/// Per-entry integrity failures are dropped and counted by the restore
/// itself. Never panics, never serves a corrupt entry.
fn load_snapshot(shared: &Shared) {
    let Some(path) = shared.config.snapshot.as_ref() else {
        return;
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    match JsonValue::parse(&text) {
        Ok(doc) => {
            restore_scoped(&shared.cache, &doc);
        }
        Err(_) => shared.cache.note_corrupt_dropped(1),
    }
}

/// Runs the snapshot restore inside the `snapshot_load` fault scope so
/// chaos plans can target exactly this site
/// (`FaultRule::first(SITE_CACHE_COMMIT, "snapshot_load", Corrupt)`).
fn restore_scoped(cache: &SharedCache, doc: &JsonValue) {
    #[cfg(feature = "faults")]
    {
        adc_numerics::faults::with_scope("snapshot_load", || {
            cache_snapshot_restore(cache, doc);
        });
    }
    #[cfg(not(feature = "faults"))]
    {
        cache_snapshot_restore(cache, doc);
    }
}

/// Saves the cache snapshot atomically (temp file + rename), so a crash
/// mid-save can never leave a half-written snapshot under the real path.
fn save_snapshot(shared: &Shared) -> io::Result<()> {
    let Some(path) = shared.config.snapshot.as_ref() else {
        return Ok(());
    };
    let text = cache_snapshot_to_json(&shared.cache).render();
    let tmp = path.with_extension("snapshot.tmp");
    std::fs::write(&tmp, text.as_bytes())?;
    std::fs::rename(&tmp, path)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            if let Err(e) = handle_connection(&shared, &mut stream) {
                // Framing errors get a best-effort 400; socket errors are
                // the peer's problem.
                if e.kind() == io::ErrorKind::InvalidData {
                    let body = error_json(&e.to_string());
                    let _ = write_response(&mut stream, 400, &body, false);
                }
            }
        });
    }
}

fn error_json(message: &str) -> String {
    JsonValue::Obj(vec![(
        "error".to_string(),
        JsonValue::Str(message.to_string()),
    )])
    .render()
}

/// Serves one keep-alive session: requests are answered on the same
/// connection until the peer asks to close, goes idle past
/// [`IDLE_READ_TIMEOUT`], or hits [`MAX_REQUESTS_PER_CONNECTION`].
fn handle_connection(shared: &Arc<Shared>, stream: &mut TcpStream) -> io::Result<()> {
    // Responses are single coalesced writes; TCP_NODELAY keeps the next
    // request from waiting on a delayed ACK of the previous response.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IDLE_READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    for served in 0..MAX_REQUESTS_PER_CONNECTION {
        let Some(request) = read_request(&mut reader)? else {
            return Ok(());
        };
        let keep_alive = request.keep_alive && served + 1 < MAX_REQUESTS_PER_CONNECTION;
        let (status, body) = route(shared, &request);
        write_response(stream, status, &body, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
    Ok(())
}

fn route(shared: &Arc<Shared>, request: &Request) -> (u16, String) {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let stats = shared.cache.stats();
            (
                200,
                JsonValue::Obj(vec![
                    ("status".to_string(), JsonValue::Str("ok".to_string())),
                    (
                        "inflight".to_string(),
                        JsonValue::Num(shared.inflight.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "shed".to_string(),
                        JsonValue::Num(shared.shed.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "runs".to_string(),
                        JsonValue::Num(shared.store.len() as f64),
                    ),
                    (
                        "cache".to_string(),
                        JsonValue::Obj(vec![
                            (
                                "entries".to_string(),
                                JsonValue::Num(shared.cache.len() as f64),
                            ),
                            ("lookups".to_string(), JsonValue::Num(stats.lookups as f64)),
                            ("hits".to_string(), JsonValue::Num(stats.hits as f64)),
                            (
                                "near_seeds".to_string(),
                                JsonValue::Num(stats.near_seeds as f64),
                            ),
                            (
                                "insertions".to_string(),
                                JsonValue::Num(stats.insertions as f64),
                            ),
                            (
                                "corrupt_dropped".to_string(),
                                JsonValue::Num(stats.corrupt_dropped as f64),
                            ),
                        ]),
                    ),
                ])
                .render(),
            )
        }
        ("POST", "/v1/runs") => submit(shared, &request.body),
        (method, p) if p.starts_with("/v1/runs/") => {
            let rest = &p["/v1/runs/".len()..];
            let (id_text, want_result) = match rest.strip_suffix("/result") {
                Some(prefix) => (prefix, true),
                None => (rest, false),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                return (404, error_json("no such route"));
            };
            match (method, want_result) {
                ("GET", false) => poll(shared, id),
                ("GET", true) => fetch(shared, id),
                ("DELETE", false) => delete(shared, id),
                _ => (405, error_json("method not allowed")),
            }
        }
        ("POST" | "GET" | "DELETE", _) => (404, error_json("no such route")),
        _ => (405, error_json("method not allowed")),
    }
}

/// Claims an admission slot, or reports the load-shedding gauge values.
fn admit(shared: &Shared) -> Result<(), (u16, String)> {
    let max = shared.config.max_inflight;
    let mut current = shared.inflight.load(Ordering::SeqCst);
    loop {
        if current >= max {
            shared.shed.fetch_add(1, Ordering::SeqCst);
            let body = JsonValue::Obj(vec![
                (
                    "error".to_string(),
                    JsonValue::Str("overloaded: in-flight run cap reached".to_string()),
                ),
                ("inflight".to_string(), JsonValue::Num(current as f64)),
                ("max_inflight".to_string(), JsonValue::Num(max as f64)),
            ])
            .render();
            return Err((429, body));
        }
        match shared.inflight.compare_exchange(
            current,
            current + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Ok(()),
            Err(seen) => current = seen,
        }
    }
}

fn release_slot(shared: &Shared) {
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
}

fn submit(shared: &Arc<Shared>, body: &[u8]) -> (u16, String) {
    if let Err(shed) = admit(shared) {
        return shed;
    }
    // From here on every early return must release the admission slot.
    let rejected = |status: u16, body: String, shared: &Shared| {
        release_slot(shared);
        (status, body)
    };

    let Ok(text) = std::str::from_utf8(body) else {
        return rejected(400, error_json("body is not UTF-8"), shared);
    };
    // Parsed: the body is structurally a flow request.
    let request = match protocol::parse_submit(text) {
        Ok(r) => r,
        Err(e) => return rejected(400, error_json(&e.to_string()), shared),
    };
    let mut session = Session::new();
    // Elaborated: the spec is inside the server's supported envelope.
    if let Err(reason) = protocol::elaborate(&request.spec) {
        return rejected(400, error_json(&reason), shared);
    }
    session
        .advance(SessionState::Elaborated)
        .expect("Parsed -> Elaborated is a lifecycle edge");
    // Ready: candidates enumerate non-empty, the run can be queued.
    let candidates = adc_topopt::enumerate::enumerate_candidates(
        request.spec.resolution,
        protocol::BACKEND_BITS,
    );
    if candidates.is_empty() {
        return rejected(
            400,
            error_json("spec enumerates no pipeline candidates"),
            shared,
        );
    }
    session
        .advance(SessionState::Ready)
        .expect("Elaborated -> Ready is a lifecycle edge");

    let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    let record = RunRecord {
        id,
        request: request.canonical().render(),
        spec: request.spec.clone(),
        cfg: request.cfg.clone(),
        options: request.options,
        session,
        stats: None,
        payload: None,
        error: None,
    };
    if let Err(e) = shared.store.insert(record) {
        let status = match e {
            StoreError::Full { .. } => 429,
            _ => 500,
        };
        return rejected(status, error_json(&e.to_string()), shared);
    }
    {
        let mut queue = shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        queue.push_back(id);
    }
    shared.available.notify_one();
    (
        202,
        JsonValue::Obj(vec![
            ("run_id".to_string(), JsonValue::Num(id as f64)),
            (
                "state".to_string(),
                JsonValue::Str(SessionState::Ready.to_string()),
            ),
        ])
        .render(),
    )
}

fn status_body(status: &crate::store::RunStatus) -> String {
    JsonValue::Obj(vec![
        ("run_id".to_string(), JsonValue::Num(status.id as f64)),
        (
            "state".to_string(),
            JsonValue::Str(status.state.to_string()),
        ),
        (
            "stats".to_string(),
            match &status.stats {
                Some(s) => adc_topopt::wire::run_stats_to_json(s),
                None => JsonValue::Null,
            },
        ),
        (
            "error".to_string(),
            match &status.error {
                Some(e) => JsonValue::Str(e.clone()),
                None => JsonValue::Null,
            },
        ),
    ])
    .render()
}

fn poll(shared: &Shared, id: u64) -> (u16, String) {
    match shared.store.status(id) {
        Some(status) => (200, status_body(&status)),
        None => (404, error_json(&StoreError::UnknownRun(id).to_string())),
    }
}

fn fetch(shared: &Shared, id: u64) -> (u16, String) {
    match shared.store.result(id) {
        None => (404, error_json(&StoreError::UnknownRun(id).to_string())),
        Some((SessionState::Completed, Some(payload), _)) => (200, payload),
        Some((state, _, error)) => {
            let body = JsonValue::Obj(vec![
                (
                    "error".to_string(),
                    JsonValue::Str(match &error {
                        Some(e) => format!("run {state}: {e}"),
                        None => format!("run is {state}, result not available"),
                    }),
                ),
                ("state".to_string(), JsonValue::Str(state.to_string())),
            ])
            .render();
            (409, body)
        }
    }
}

fn delete(shared: &Shared, id: u64) -> (u16, String) {
    match shared.store.cancel(id) {
        Ok(()) => {
            // Remove from the queue so no worker claims the corpse; the
            // claim race is benign (the worker's `Ready → Running` flip
            // fails typed and it moves on).
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.retain(|&queued| queued != id);
            drop(queue);
            release_slot(shared);
            (
                200,
                JsonValue::Obj(vec![
                    ("run_id".to_string(), JsonValue::Num(id as f64)),
                    (
                        "state".to_string(),
                        JsonValue::Str(SessionState::Failed.to_string()),
                    ),
                    ("cancelled".to_string(), JsonValue::Bool(true)),
                ])
                .render(),
            )
        }
        Err(StoreError::NotCancellable(state)) if state.is_terminal() => {
            match shared.store.evict(id) {
                Ok(()) => (
                    200,
                    JsonValue::Obj(vec![
                        ("run_id".to_string(), JsonValue::Num(id as f64)),
                        ("evicted".to_string(), JsonValue::Bool(true)),
                    ])
                    .render(),
                ),
                Err(e) => (409, error_json(&e.to_string())),
            }
        }
        Err(StoreError::UnknownRun(_)) => {
            (404, error_json(&StoreError::UnknownRun(id).to_string()))
        }
        Err(e) => (409, error_json(&e.to_string())),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Claim: a cancellation that won the race leaves the run
        // `Failed`; the typed rejection is the skip signal.
        if shared.store.advance(id, SessionState::Running).is_err() {
            continue;
        }
        let Some((spec, cfg, options)) = shared.store.job(id) else {
            release_slot(shared);
            continue;
        };
        let request = SubmitRequest { spec, cfg, options };
        let (run, payload) = protocol::run_and_render_memo(
            &request,
            &shared.cache,
            shared.config.verify,
            &shared.memo,
        );
        let candidates = adc_topopt::enumerate::enumerate_candidates(
            request.spec.resolution,
            protocol::BACKEND_BITS,
        );
        let landed = match protocol::outcome(&request.spec, &candidates, &run) {
            Ok(()) => shared.store.complete(id, run.stats, payload),
            Err(reason) => shared.store.fail(id, Some(run.stats), reason),
        };
        // A lost store record (evicted mid-run) is not a worker failure.
        drop(landed);
        release_slot(shared);
    }
}
