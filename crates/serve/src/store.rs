//! `ResultStore`: `run_id → (request echo, RunStats, result payload)`,
//! owning results independently of the worker that produced them.
//!
//! Workers hold the store's lock only for constant-time state flips and
//! payload moves — never across a synthesis — so polling, fetching and
//! eviction from connection threads cannot block the executor pool.
//! Capacity is bounded: terminal records are evicted oldest-first to admit
//! new runs, and the store sheds (typed) when live runs alone fill it.

use crate::session::{IllegalTransition, Session, SessionState};
use adc_mdac::specs::AdcSpec;
use adc_synth::SynthConfig;
use adc_topopt::flow::{FlowOptions, RunStats};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// Typed store-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No record under this `run_id` (never admitted, or evicted).
    UnknownRun(u64),
    /// The store is at capacity with no terminal record to evict.
    Full {
        /// Configured record capacity.
        capacity: usize,
    },
    /// The requested state change violates the session machine.
    Illegal(IllegalTransition),
    /// The run is not in a cancellable state (only `Ready` runs can be
    /// cancelled; `Running` runs finish on their own deadline).
    NotCancellable(SessionState),
    /// The run is not terminal yet, so its record cannot be evicted.
    NotEvictable(SessionState),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownRun(id) => write!(f, "unknown run {id}"),
            StoreError::Full { capacity } => {
                write!(f, "result store full ({capacity} live runs)")
            }
            StoreError::Illegal(e) => write!(f, "{e}"),
            StoreError::NotCancellable(s) => write!(f, "run is {s}, not cancellable"),
            StoreError::NotEvictable(s) => write!(f, "run is {s}, not evictable"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<IllegalTransition> for StoreError {
    fn from(e: IllegalTransition) -> Self {
        StoreError::Illegal(e)
    }
}

/// One admitted run: the echoed request, its session, and (once a worker
/// finishes) the stats + rendered payload.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Server-assigned identifier.
    pub id: u64,
    /// Canonical re-render of the submitted request body.
    pub request: String,
    /// Parsed ADC spec (the worker's input).
    pub spec: AdcSpec,
    /// Parsed synthesis config.
    pub cfg: SynthConfig,
    /// Parsed flow options (budgets/retry riding the `Deadline` plumbing).
    pub options: FlowOptions,
    /// Session machine for this run.
    pub session: Session,
    /// Run statistics, set when the flow finishes (even on failure).
    pub stats: Option<RunStats>,
    /// Rendered result payload, set on `Completed`.
    pub payload: Option<String>,
    /// Failure reason, set on `Failed`.
    pub error: Option<String>,
}

/// A poll-sized snapshot of one record (no payload body).
#[derive(Debug, Clone)]
pub struct RunStatus {
    /// Server-assigned identifier.
    pub id: u64,
    /// Current session state.
    pub state: SessionState,
    /// Run statistics when the flow has finished.
    pub stats: Option<RunStats>,
    /// Failure reason on `Failed`.
    pub error: Option<String>,
}

struct Inner {
    map: HashMap<u64, RunRecord>,
    /// Admission order; eviction scans this front-to-back for terminals.
    order: VecDeque<u64>,
    capacity: usize,
}

/// Bounded, thread-safe map of run results. See the module docs for the
/// locking discipline.
pub struct ResultStore {
    inner: Mutex<Inner>,
}

impl ResultStore {
    /// An empty store holding at most `capacity` records.
    pub fn new(capacity: usize) -> ResultStore {
        ResultStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admits a record, evicting the oldest **terminal** record if the
    /// store is at capacity.
    ///
    /// # Errors
    /// [`StoreError::Full`] when every resident record is still live.
    pub fn insert(&self, record: RunRecord) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if inner.map.len() >= inner.capacity {
            let victim = inner.order.iter().copied().find(|id| {
                inner
                    .map
                    .get(id)
                    .is_some_and(|r| r.session.state().is_terminal())
            });
            match victim {
                Some(id) => {
                    inner.map.remove(&id);
                    inner.order.retain(|&k| k != id);
                }
                None => {
                    return Err(StoreError::Full {
                        capacity: inner.capacity,
                    })
                }
            }
        }
        inner.order.push_back(record.id);
        inner.map.insert(record.id, record);
        Ok(())
    }

    /// Flips a run's session state along a legal edge.
    ///
    /// # Errors
    /// [`StoreError::UnknownRun`] or a typed [`StoreError::Illegal`].
    pub fn advance(&self, id: u64, to: SessionState) -> Result<SessionState, StoreError> {
        let mut inner = self.lock();
        let record = inner.map.get_mut(&id).ok_or(StoreError::UnknownRun(id))?;
        Ok(record.session.advance(to)?)
    }

    /// The worker's input for a claimed run.
    pub fn job(&self, id: u64) -> Option<(AdcSpec, SynthConfig, FlowOptions)> {
        let inner = self.lock();
        inner
            .map
            .get(&id)
            .map(|r| (r.spec.clone(), r.cfg.clone(), r.options))
    }

    /// Poll snapshot (no payload body).
    pub fn status(&self, id: u64) -> Option<RunStatus> {
        let inner = self.lock();
        inner.map.get(&id).map(|r| RunStatus {
            id: r.id,
            state: r.session.state(),
            stats: r.stats,
            error: r.error.clone(),
        })
    }

    /// The terminal payload: `(state, payload, error)`. `payload` is
    /// `Some` only on `Completed`.
    pub fn result(&self, id: u64) -> Option<(SessionState, Option<String>, Option<String>)> {
        let inner = self.lock();
        inner
            .map
            .get(&id)
            .map(|r| (r.session.state(), r.payload.clone(), r.error.clone()))
    }

    /// Marks a run `Completed` with its stats and rendered payload.
    ///
    /// # Errors
    /// Unknown run or an illegal edge (the run was not `Running`).
    pub fn complete(&self, id: u64, stats: RunStats, payload: String) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = inner.map.get_mut(&id).ok_or(StoreError::UnknownRun(id))?;
        record.session.advance(SessionState::Completed)?;
        record.stats = Some(stats);
        record.payload = Some(payload);
        Ok(())
    }

    /// Marks a run `Failed` with a reason (stats ride along when the flow
    /// got far enough to produce them).
    ///
    /// # Errors
    /// Unknown run or an illegal edge.
    pub fn fail(&self, id: u64, stats: Option<RunStats>, error: String) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = inner.map.get_mut(&id).ok_or(StoreError::UnknownRun(id))?;
        record.session.advance(SessionState::Failed)?;
        if stats.is_some() {
            record.stats = stats;
        }
        record.error = Some(error);
        Ok(())
    }

    /// Cancels a queued (`Ready`) run: the only state a client may fail.
    ///
    /// # Errors
    /// [`StoreError::NotCancellable`] for any other state.
    pub fn cancel(&self, id: u64) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = inner.map.get_mut(&id).ok_or(StoreError::UnknownRun(id))?;
        if record.session.state() != SessionState::Ready {
            return Err(StoreError::NotCancellable(record.session.state()));
        }
        record.session.advance(SessionState::Failed)?;
        record.error = Some("cancelled".to_string());
        Ok(())
    }

    /// Drops a terminal record.
    ///
    /// # Errors
    /// [`StoreError::NotEvictable`] while the run is live.
    pub fn evict(&self, id: u64) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let state = inner
            .map
            .get(&id)
            .ok_or(StoreError::UnknownRun(id))?
            .session
            .state();
        if !state.is_terminal() {
            return Err(StoreError::NotEvictable(state));
        }
        inner.map.remove(&id);
        inner.order.retain(|&k| k != id);
        Ok(())
    }

    /// Resident record count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, state: SessionState) -> RunRecord {
        let mut session = Session::new();
        // Drive the session legally up to the requested state.
        for to in [
            SessionState::Elaborated,
            SessionState::Ready,
            SessionState::Running,
            SessionState::Completed,
        ] {
            if session.state() == state {
                break;
            }
            if state == SessionState::Failed && session.state() == SessionState::Running {
                session.advance(SessionState::Failed).unwrap();
                break;
            }
            session.advance(to).unwrap();
        }
        RunRecord {
            id,
            request: String::new(),
            spec: AdcSpec::date05(10),
            cfg: SynthConfig::default(),
            options: FlowOptions::default(),
            session,
            stats: None,
            payload: None,
            error: None,
        }
    }

    #[test]
    fn capacity_evicts_terminal_records_oldest_first() {
        let store = ResultStore::new(2);
        store.insert(record(1, SessionState::Completed)).unwrap();
        store.insert(record(2, SessionState::Completed)).unwrap();
        store.insert(record(3, SessionState::Ready)).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.status(1).is_none(), "oldest terminal evicted");
        assert!(store.status(2).is_some());
        assert!(store.status(3).is_some());
    }

    #[test]
    fn full_of_live_runs_sheds_typed() {
        let store = ResultStore::new(2);
        store.insert(record(1, SessionState::Ready)).unwrap();
        store.insert(record(2, SessionState::Running)).unwrap();
        let err = store.insert(record(3, SessionState::Ready)).unwrap_err();
        assert_eq!(err, StoreError::Full { capacity: 2 });
    }

    #[test]
    fn cancel_only_from_ready() {
        let store = ResultStore::new(8);
        store.insert(record(1, SessionState::Ready)).unwrap();
        store.insert(record(2, SessionState::Running)).unwrap();
        store.cancel(1).unwrap();
        assert_eq!(store.status(1).unwrap().state, SessionState::Failed);
        assert_eq!(store.status(1).unwrap().error.as_deref(), Some("cancelled"));
        assert_eq!(
            store.cancel(2).unwrap_err(),
            StoreError::NotCancellable(SessionState::Running)
        );
        assert_eq!(store.cancel(7).unwrap_err(), StoreError::UnknownRun(7));
    }

    #[test]
    fn eviction_requires_terminal() {
        let store = ResultStore::new(8);
        store.insert(record(1, SessionState::Running)).unwrap();
        assert_eq!(
            store.evict(1).unwrap_err(),
            StoreError::NotEvictable(SessionState::Running)
        );
        store
            .complete(1, RunStats::default(), "{}".to_string())
            .unwrap();
        store.evict(1).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn double_completion_is_an_illegal_edge() {
        let store = ResultStore::new(8);
        store.insert(record(1, SessionState::Running)).unwrap();
        store
            .complete(1, RunStats::default(), "{}".to_string())
            .unwrap();
        let err = store
            .complete(1, RunStats::default(), "{}".to_string())
            .unwrap_err();
        assert!(matches!(err, StoreError::Illegal(_)), "{err}");
    }

    /// Multithreaded hammer: four threads race live inserts, completions,
    /// and the oldest-terminal evictions against a capacity-8 store. The
    /// invariants under contention: capacity is never exceeded, a shed is
    /// always the typed `Full` error, and eviction never drops a run that
    /// is still live (every thread's own live run stays fetchable until
    /// it drives it terminal itself).
    #[test]
    fn concurrent_hammer_never_drops_live_runs_or_overflows() {
        use std::sync::atomic::{AtomicU64, Ordering};

        const CAPACITY: usize = 8;
        let store = ResultStore::new(CAPACITY);
        let next = AtomicU64::new(1);
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let store = &store;
                let next = &next;
                scope.spawn(move || {
                    for round in 0..200u64 {
                        let id = next.fetch_add(1, Ordering::SeqCst);
                        match store.insert(record(id, SessionState::Running)) {
                            Ok(()) => {}
                            Err(StoreError::Full { capacity }) => {
                                assert_eq!(capacity, CAPACITY);
                                continue;
                            }
                            Err(e) => panic!("unexpected shed error: {e}"),
                        }
                        assert!(store.len() <= CAPACITY, "capacity exceeded");
                        // Our run is live: eviction (terminal-only) must
                        // never have taken it, however many terminal
                        // records other threads are churning through.
                        let status = store
                            .status(id)
                            .unwrap_or_else(|| panic!("live run {id} was evicted"));
                        assert!(!status.state.is_terminal());
                        // Drive it terminal ourselves so it becomes
                        // eviction fodder for the other threads.
                        if (worker + round) % 2 == 0 {
                            store
                                .complete(id, RunStats::default(), "{}".to_string())
                                .unwrap();
                        } else {
                            store.fail(id, None, "hammer".to_string()).unwrap();
                        }
                    }
                });
            }
        });
        assert!(store.len() <= CAPACITY);
    }
}
