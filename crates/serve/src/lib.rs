//! # adc-serve
//!
//! **Synthesis-as-a-service**: the resident flow server over the
//! candidate-set synthesis flow of `adc-topopt`.
//!
//! A designer-facing deployment of the paper's flow is interactive —
//! submit a spec, poll, inspect ranked candidates, retarget — but every
//! batch binary in the workspace dies with its process and takes the
//! warm cross-resolution [`BlockCache`](adc_topopt::cache::BlockCache)
//! with it. This crate keeps the cache and the executor pool resident:
//!
//! - [`server`] — from-scratch HTTP/1.1 over `std::net` (the workspace is
//!   registry-free: no axum/tokio/hyper), an accept loop serving
//!   **keep-alive** connections, a bounded worker pool sharing the
//!   **sharded** [`SharedCache`](adc_topopt::cache::SharedCache) through
//!   [`run_flow_shared`](adc_topopt::flow::run_flow_shared) (placement by
//!   block fingerprint: a lookup or commit locks one shard, never the
//!   whole cache), typed admission control (429 + `Retry-After` past the
//!   in-flight cap), and snapshot persistence (integrity-checked restore
//!   on boot, atomic save on shutdown and periodically);
//! - [`session`] — the per-run state machine `Parsed → Elaborated →
//!   Ready → Running → Completed/Failed` with illegal transitions
//!   rejected as typed errors;
//! - [`store`] — the bounded `ResultStore` mapping `run_id → (request
//!   echo, RunStats, payload)`, owned independently of the worker that
//!   produced it so polling/fetching/eviction never block the pool;
//! - [`protocol`] — request parsing plus the pure payload renderer shared
//!   with the batch oracle (bit-identity by construction), and the
//!   deterministic `result`-subtree memo warm resubmissions are served
//!   from;
//! - [`http`] — the minimal HTTP framing, the one-shot client, and the
//!   persistent keep-alive [`http::Client`] used by smoke mode, the tests
//!   and `bench_serve`.
//!
//! Serialization rides `adc_topopt::wire` end to end, so the library API
//! and the wire API cannot drift — including the versioned cache-snapshot
//! format.

pub mod http;
pub mod protocol;
pub mod server;
pub mod session;
pub mod store;

pub use protocol::{
    parse_submit, render_payload, run_and_render, run_and_render_memo, ResultMemo, SubmitRequest,
};
pub use server::{FlowServer, ServerConfig};
pub use session::{IllegalTransition, Session, SessionState};
pub use store::{ResultStore, RunRecord, RunStatus, StoreError};
