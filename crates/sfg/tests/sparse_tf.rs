//! Sparse-vs-dense oracle tests for the numeric TF extraction: the CSR
//! engine with its reusable symbolic factorization must reproduce the
//! dense partial-pivoting results bit-for-bit up to elimination-order
//! rounding (≤ 1e-9 relative), and retuning a testbench must reuse the
//! symbolic factorization instead of re-analyzing.

use adc_sfg::nettf::{extract_tf_with, NetTfOptions, NetTfWorkspace};
use adc_spice::dc::{dc_operating_point, DcOptions};
use adc_spice::linearize::SolverChoice;
use adc_spice::netlist::{Circuit, NodeId};
use adc_spice::process::Process;
use proptest::prelude::*;

/// Randomized cascode-OTA testbench (MNA dim ≥ 9 so the automatic engine
/// selection takes the sparse path).
fn random_ota(w1: f64, w2: f64, rl: f64, cl: f64) -> (Circuit, NodeId) {
    let p = Process::c025();
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let g = c.node("g");
    let mid = c.node("mid");
    let out = c.node("out");
    let np = c.node("np");
    let b1 = c.node("vb1");
    let b2 = c.node("vb2");
    c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
    c.add_vsource("VB1", b1, Circuit::GROUND, 2.0);
    c.add_vsource("VB2", b2, Circuit::GROUND, 1.5);
    c.add_vsource_wave("VG", g, Circuit::GROUND, 0.9.into(), 1.0);
    c.add_mosfet(
        "M1",
        mid,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        p.nmos,
        w1 * 1e-6,
        0.5e-6,
    );
    c.add_mosfet(
        "M2",
        out,
        b2,
        mid,
        Circuit::GROUND,
        p.nmos,
        w1 * 1e-6,
        0.5e-6,
    );
    c.add_mosfet("M3", out, b1, np, vdd, p.pmos, w2 * 1e-6, 0.5e-6);
    c.add_mosfet("M4", np, b1, vdd, vdd, p.pmos, w2 * 1e-6, 0.5e-6);
    c.add_resistor("RL", out, Circuit::GROUND, rl * 1e3);
    c.add_capacitor("CL", out, Circuit::GROUND, cl * 1e-12);
    c.add_capacitor("CM", mid, Circuit::GROUND, 0.2e-12);
    (c, out)
}

proptest! {
    /// Sparse and dense TF extraction agree across randomized OTA
    /// testbenches: same sampled determinant pipeline, only the LU engine
    /// differs, so evaluated responses must match to ≤ 1e-9 relative.
    #[test]
    fn tf_sparse_matches_dense_oracle(
        w1 in 2.0f64..40.0,
        w2 in 2.0f64..40.0,
        rl in 5.0f64..200.0,
        cl in 0.2f64..5.0,
    ) {
        let (c, out) = random_ota(w1, w2, rl, cl);
        let op = match dc_operating_point(&c, &DcOptions::default()) {
            Ok(op) => op,
            Err(_) => return Ok(()),
        };
        let opts = NetTfOptions::default();
        let mut dense_ws = NetTfWorkspace::new();
        dense_ws.set_solver(SolverChoice::Dense);
        let mut sparse_ws = NetTfWorkspace::new();
        sparse_ws.set_solver(SolverChoice::Sparse);
        let td = extract_tf_with(&mut dense_ws, &c, &op, out, &opts);
        let ts = extract_tf_with(&mut sparse_ws, &c, &op, out, &opts);
        prop_assert!(!dense_ws.is_sparse() && sparse_ws.is_sparse());
        let (td, ts) = match (td, ts) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(_), Err(_)) => return Ok(()),
            (a, b) => {
                prop_assert!(false, "engines diverged: {:?} vs {:?}", a.is_ok(), b.is_ok());
                unreachable!()
            }
        };
        for f in [1e4, 1e6, 1e8, 1e9] {
            let (hd, hs) = (td.eval_at_freq(f), ts.eval_at_freq(f));
            prop_assert!(
                (hd - hs).norm() <= 1e-9 * hd.norm().max(1e-12),
                "f = {f}: dense {hd:?} vs sparse {hs:?}"
            );
        }
    }
}

/// Retuning element values re-extracts through the **same** symbolic
/// factorization: exactly one analysis per topology, no re-allocation of
/// the factor pattern, and the results still track a fresh dense
/// extraction.
#[test]
fn retune_reuses_symbolic_factorization() {
    let (mut c, out) = random_ota(10.0, 20.0, 50.0, 1.0);
    let opts = NetTfOptions::default();
    let mut ws = NetTfWorkspace::new();

    let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
    extract_tf_with(&mut ws, &c, &op, out, &opts).unwrap();
    assert!(ws.is_sparse(), "OTA testbench should auto-select sparse");
    assert_eq!(ws.symbolic_analyses(), 1);

    for (i, rl) in [60e3, 75e3, 90e3].iter().enumerate() {
        let (rid, _) = c.find_element("RL").unwrap();
        c.set_value(rid, *rl);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let tf = extract_tf_with(&mut ws, &c, &op, out, &opts).unwrap();
        assert_eq!(
            ws.symbolic_analyses(),
            1,
            "retune #{i} must reuse the symbolic factorization"
        );
        // Oracle: a fresh dense workspace on the retuned circuit.
        let mut dense_ws = NetTfWorkspace::new();
        dense_ws.set_solver(SolverChoice::Dense);
        let td = extract_tf_with(&mut dense_ws, &c, &op, out, &opts).unwrap();
        for f in [1e4, 1e7, 1e9] {
            let (hs, hd) = (tf.eval_at_freq(f), td.eval_at_freq(f));
            assert!(
                (hs - hd).norm() <= 1e-9 * hd.norm().max(1e-12),
                "retune #{i}, f = {f}: sparse {hs:?} vs dense {hd:?}"
            );
        }
    }
}
