//! Numeric rational transfer functions and their AC characteristics.
//!
//! Once the symbolic DPI/SFG transfer function is bound to the extracted
//! small-signal values, everything the synthesis constraints need —
//! poles/zeros, DC gain, unity-gain frequency, phase margin — is read off
//! the numeric rational function here. This is the "fast equation
//! evaluation" leg of the paper's hybrid methodology.

use adc_numerics::complex::Complex;
use adc_numerics::interp::logspace;
use adc_numerics::poly::Poly;
use std::cell::RefCell;
use std::fmt;
use std::sync::OnceLock;

/// A numeric transfer function `H(s) = num(s)/den(s)`.
///
/// Roots of both polynomials are computed lazily and cached: the root
/// finder is deterministic, so the cache returns exactly the bits a
/// fresh computation would — repeated phase/stability queries stop
/// re-finding the same roots.
#[derive(Debug, Clone)]
pub struct Tf {
    num: Poly,
    den: Poly,
    num_roots: OnceLock<Vec<Complex>>,
    den_roots: OnceLock<Vec<Complex>>,
}

impl PartialEq for Tf {
    fn eq(&self, other: &Self) -> bool {
        self.num == other.num && self.den == other.den
    }
}

/// Summary of the AC characteristics of a transfer function.
#[derive(Debug, Clone, PartialEq)]
pub struct AcCharacteristics {
    /// DC gain (linear, signed).
    pub dc_gain: f64,
    /// DC gain magnitude in dB.
    pub dc_gain_db: f64,
    /// −3 dB bandwidth, Hz (`None` if the response never drops 3 dB).
    pub f3db: Option<f64>,
    /// Unity-gain frequency, Hz (`None` if |H| never crosses 1).
    pub unity_freq: Option<f64>,
    /// Phase margin, degrees (`None` without a unity crossing).
    pub phase_margin_deg: Option<f64>,
    /// Gain–bandwidth product estimate `|A0|·f3db`, Hz.
    pub gbw: Option<f64>,
    /// Poles (rad/s, complex).
    pub poles: Vec<Complex>,
    /// Zeros (rad/s, complex).
    pub zeros: Vec<Complex>,
}

impl Tf {
    /// Creates `num/den`.
    ///
    /// # Panics
    /// Panics if `den` is the zero polynomial.
    pub fn new(num: Poly, den: Poly) -> Self {
        assert!(!den.is_zero(), "transfer function with zero denominator");
        Tf {
            num,
            den,
            num_roots: OnceLock::new(),
            den_roots: OnceLock::new(),
        }
    }

    /// A pure gain.
    pub fn constant(k: f64) -> Self {
        Tf::new(Poly::constant(k), Poly::one())
    }

    /// Single-pole low-pass `k / (1 + s/p)` with pole at `p` rad/s.
    pub fn single_pole(k: f64, pole_rad: f64) -> Self {
        Tf::new(Poly::constant(k), Poly::new(vec![1.0, 1.0 / pole_rad]))
    }

    /// Numerator.
    pub fn num(&self) -> &Poly {
        &self.num
    }

    /// Denominator.
    pub fn den(&self) -> &Poly {
        &self.den
    }

    /// Evaluates `H(s)` at a complex frequency.
    pub fn eval(&self, s: Complex) -> Complex {
        self.num.eval_complex(s) / self.den.eval_complex(s)
    }

    /// Evaluates at `s = j·2πf`.
    pub fn eval_at_freq(&self, f_hz: f64) -> Complex {
        self.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f_hz))
    }

    /// Magnitude at a frequency (linear).
    pub fn magnitude(&self, f_hz: f64) -> f64 {
        self.eval_at_freq(f_hz).norm()
    }

    /// Magnitude at a frequency, dB.
    pub fn magnitude_db(&self, f_hz: f64) -> f64 {
        20.0 * self.magnitude(f_hz).max(1e-300).log10()
    }

    /// Phase at a frequency, degrees (principal value).
    pub fn phase_deg(&self, f_hz: f64) -> f64 {
        self.eval_at_freq(f_hz).arg().to_degrees()
    }

    /// DC gain `H(0)` (may be ±∞ for integrators).
    pub fn dc_gain(&self) -> f64 {
        let n = self.num.eval(0.0);
        let d = self.den.eval(0.0);
        n / d
    }

    /// Cached denominator roots (computed on first use).
    fn poles_cached(&self) -> &[Complex] {
        self.den_roots.get_or_init(|| self.den.roots())
    }

    /// Cached numerator roots (computed on first use).
    fn zeros_cached(&self) -> &[Complex] {
        self.num_roots.get_or_init(|| self.num.roots())
    }

    /// Poles in rad/s.
    pub fn poles(&self) -> Vec<Complex> {
        self.poles_cached().to_vec()
    }

    /// Zeros in rad/s.
    pub fn zeros(&self) -> Vec<Complex> {
        self.zeros_cached().to_vec()
    }

    /// True if every pole has a strictly negative real part.
    pub fn is_stable(&self) -> bool {
        self.poles_cached().iter().all(|p| p.re < 0.0)
    }

    /// Cascade (series) connection: `self · other`.
    pub fn cascade(&self, other: &Tf) -> Tf {
        Tf::new(&self.num * &other.num, &self.den * &other.den)
    }

    /// Removes matching pole/zero pairs closer than `rel_tol` (relative to
    /// magnitude). Useful after determinant-based extraction.
    pub fn cancel_common_roots(&self, rel_tol: f64) -> Tf {
        let mut zeros = self.zeros();
        let mut poles = self.poles();
        let num_lead = self.num.leading();
        let den_lead = self.den.leading();
        let mut i = 0;
        while i < zeros.len() {
            let z = zeros[i];
            if let Some(j) = poles
                .iter()
                .position(|p| (*p - z).norm() <= rel_tol * (1.0 + z.norm().max(p.norm())))
            {
                zeros.swap_remove(i);
                poles.swap_remove(j);
            } else {
                i += 1;
            }
        }
        let num = Poly::from_complex_roots(&zeros).scale(num_lead);
        let den = Poly::from_complex_roots(&poles).scale(den_lead);
        Tf::new(num, den)
    }

    /// Finds the unity-gain frequency by scanning `[f_lo, f_hi]` on a log
    /// grid and bisecting the first `|H| = 1` crossing.
    pub fn unity_gain_freq(&self, f_lo: f64, f_hi: f64) -> Option<f64> {
        self.magnitude_crossing(f_lo, f_hi, 1.0)
    }

    /// Finds the first frequency where `|H|` falls to `level` (from above),
    /// scanning upward on a log grid.
    pub fn magnitude_crossing(&self, f_lo: f64, f_hi: f64, level: f64) -> Option<f64> {
        // Chunked SIMD magnitude scan: each lane reproduces the serial
        // `self.magnitude(f)` bit-for-bit (same Horner fold, Smith divide
        // and hypot), and chunk results are walked in grid order, so the
        // first-crossing bracket — and the bisected crossing — is exactly
        // the serial scan's. Points computed past the crossing inside a
        // chunk are pure speculation with no side effects.
        const SCAN_CHUNK: usize = 16;
        with_log_grid(f_lo, f_hi, |grid| {
            let mut prev_f = grid[0];
            if self.magnitude(prev_f) <= level {
                return Some(prev_f);
            }
            let mut mags = [0.0f64; SCAN_CHUNK];
            let mut idx = 1usize;
            while idx < grid.len() {
                let take = (grid.len() - idx).min(SCAN_CHUNK);
                adc_numerics::simd::rational_mags(
                    self.num.coeffs(),
                    self.den.coeffs(),
                    &grid[idx..idx + take],
                    &mut mags[..take],
                );
                for (&f, &m) in grid[idx..idx + take].iter().zip(&mags[..take]) {
                    if m <= level {
                        // Bisect between prev_f and f.
                        let (mut a, mut b) = (prev_f, f);
                        for _ in 0..60 {
                            let mid = (a * b).sqrt();
                            if self.magnitude(mid) > level {
                                a = mid;
                            } else {
                                b = mid;
                            }
                        }
                        return Some((a * b).sqrt());
                    }
                    prev_f = f;
                }
                idx += take;
            }
            None
        })
    }

    /// −3 dB bandwidth relative to the DC gain.
    pub fn f3db(&self, f_lo: f64, f_hi: f64) -> Option<f64> {
        let a0 = self.magnitude(f_lo);
        self.magnitude_crossing(f_lo, f_hi, a0 / 2.0_f64.sqrt())
    }

    /// Phase margin in degrees: `180°` minus the phase lag accumulated
    /// between `f_lo` and the unity crossing.
    ///
    /// Referencing the lag to the low-frequency phase makes the result
    /// meaningful for inverting and non-inverting amplifiers alike; the
    /// phases themselves come from the pole/zero decomposition (exact, no
    /// unwrapping ambiguity).
    pub fn phase_margin_deg(&self, f_lo: f64, f_hi: f64) -> Option<f64> {
        let fu = self.unity_gain_freq(f_lo, f_hi)?;
        let lag = self.phase_exact_deg(f_lo) - self.phase_exact_deg(fu);
        Some(180.0 - lag)
    }

    /// Exact accumulated phase at `f` from poles/zeros (degrees), counting
    /// each LHP pole's contribution in `(−90°, 0°]` etc. — immune to
    /// principal-value wrapping.
    pub fn phase_exact_deg(&self, f_hz: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f_hz;
        let jw = Complex::new(0.0, w);
        // `0.0 - x` instead of `-x` keeps real-axis roots on the +0 branch
        // of atan2 (negating +0.0 yields −0.0, which flips the angle sign).
        let neg = |r: Complex| Complex::new(0.0 - r.re, 0.0 - r.im);
        let mut phase = if self.dc_gain() < 0.0 { 180.0 } else { 0.0 };
        for &z in self.zeros_cached() {
            phase += (jw - z).arg().to_degrees() - neg(z).arg().to_degrees();
        }
        for &p in self.poles_cached() {
            phase -= (jw - p).arg().to_degrees() - neg(p).arg().to_degrees();
        }
        phase
    }

    /// Computes the full characteristics summary over `[f_lo, f_hi]`.
    pub fn characteristics(&self, f_lo: f64, f_hi: f64) -> AcCharacteristics {
        let a0 = self.dc_gain();
        let f3db = self.f3db(f_lo, f_hi);
        let unity = self.unity_gain_freq(f_lo, f_hi);
        AcCharacteristics {
            dc_gain: a0,
            dc_gain_db: 20.0 * a0.abs().max(1e-300).log10(),
            f3db,
            unity_freq: unity,
            phase_margin_deg: unity
                .map(|fu| 180.0 - (self.phase_exact_deg(f_lo) - self.phase_exact_deg(fu))),
            gbw: f3db.map(|f| a0.abs() * f),
            poles: self.poles(),
            zeros: self.zeros(),
        }
    }

    /// Conservative linear-settling time to relative accuracy `eps`
    /// (seconds): slowest pole dominates, `t = ln(1/eps)/|Re p|`.
    ///
    /// Returns `None` for unstable or pole-free functions.
    pub fn settling_time(&self, eps: f64) -> Option<f64> {
        let poles = self.poles_cached();
        if poles.is_empty() {
            return None;
        }
        let mut worst: f64 = 0.0;
        for &p in poles {
            if p.re >= 0.0 {
                return None;
            }
            worst = worst.max((1.0 / eps).ln() / (-p.re));
        }
        Some(worst)
    }
}

impl fmt::Display for Tf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)
    }
}

/// Points in the magnitude-scan log grid.
const GRID_POINTS: usize = 400;

thread_local! {
    /// Memo of recently used scan grids, keyed by the exact endpoint
    /// bits. Evaluators sweep the same `[f_lo, f_hi]` window thousands of
    /// times; `logspace` is deterministic, so a memoized grid is
    /// bit-identical to a fresh one.
    static LOG_GRIDS: RefCell<Vec<(u64, u64, Vec<f64>)>> = const { RefCell::new(Vec::new()) };
}

/// Runs `body` with the (possibly memoized) `GRID_POINTS`-point log grid
/// over `[f_lo, f_hi]`.
fn with_log_grid<R>(f_lo: f64, f_hi: f64, body: impl FnOnce(&[f64]) -> R) -> R {
    let key = (f_lo.to_bits(), f_hi.to_bits());
    LOG_GRIDS.with(|cell| {
        let mut grids = cell.borrow_mut();
        if let Some(g) = grids.iter().find(|&&(a, b, _)| (a, b) == key) {
            return body(&g.2);
        }
        // Bound the memo; evaluation loops use a handful of windows.
        if grids.len() >= 8 {
            grids.remove(0);
        }
        grids.push((key.0, key.1, logspace(f_lo, f_hi, GRID_POINTS)));
        body(&grids.last().expect("just pushed").2)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_pole_amp() -> Tf {
        // A0 = 1000, pole at 1 kHz → GBW = 1 MHz
        Tf::single_pole(1000.0, 2.0 * std::f64::consts::PI * 1e3)
    }

    #[test]
    fn dc_gain_and_poles() {
        let h = single_pole_amp();
        assert!((h.dc_gain() - 1000.0).abs() < 1e-9);
        let p = h.poles();
        assert_eq!(p.len(), 1);
        assert!((p[0].re + 2.0 * std::f64::consts::PI * 1e3).abs() < 1.0);
        assert!(h.is_stable());
    }

    #[test]
    fn unity_gain_at_gbw() {
        let h = single_pole_amp();
        let fu = h.unity_gain_freq(1.0, 1e9).unwrap();
        assert!((fu - 1e6).abs() < 2e3, "fu = {fu}");
    }

    #[test]
    fn phase_margin_of_single_pole_is_90() {
        let h = single_pole_amp();
        let pm = h.phase_margin_deg(1.0, 1e9).unwrap();
        assert!((pm - 90.0).abs() < 1.0, "pm = {pm}");
    }

    #[test]
    fn two_pole_phase_margin() {
        // A0=1000, p1=1kHz, p2=1MHz = GBW: classic ~51.8° margin point.
        let p1 = Tf::single_pole(1000.0, 2.0 * std::f64::consts::PI * 1e3);
        let p2 = Tf::single_pole(1.0, 2.0 * std::f64::consts::PI * 1e6);
        let h = p1.cascade(&p2);
        let pm = h.phase_margin_deg(1.0, 1e10).unwrap();
        assert!(pm > 45.0 && pm < 60.0, "pm = {pm}");
    }

    #[test]
    fn f3db_of_lowpass() {
        let h = single_pole_amp();
        let f = h.f3db(1.0, 1e9).unwrap();
        assert!((f - 1e3).abs() < 10.0, "f3db = {f}");
        let ch = h.characteristics(1.0, 1e9);
        let gbw = ch.gbw.unwrap();
        assert!((gbw - 1e6).abs() < 2e4, "gbw = {gbw}");
    }

    #[test]
    fn rhp_zero_degrades_phase() {
        // H = (1 - s/z)/(1 + s/p): RHP zero adds phase lag.
        let z = 2.0 * std::f64::consts::PI * 1e6;
        let p = 2.0 * std::f64::consts::PI * 1e3;
        let h = Tf::new(
            Poly::new(vec![1000.0, -1000.0 / z]),
            Poly::new(vec![1.0, 1.0 / p]),
        );
        let ph = h.phase_exact_deg(1e6);
        // pole contributes ≈ −90, RHP zero ≈ −45 at f = z.
        assert!(ph < -120.0, "phase = {ph}");
    }

    #[test]
    fn settling_time_single_pole() {
        let h = single_pole_amp();
        // closed... open-loop pole at 2π·1kHz: ts(0.1%) = ln(1000)/ω
        let ts = h.settling_time(1e-3).unwrap();
        let want = (1000.0f64).ln() / (2.0 * std::f64::consts::PI * 1e3);
        assert!((ts - want).abs() < 1e-9 * want.abs() + 1e-12);
        // Unstable system returns None.
        let bad = Tf::new(Poly::constant(1.0), Poly::new(vec![-1.0, 1.0]));
        assert!(bad.settling_time(1e-3).is_none());
        assert!(!bad.is_stable());
    }

    #[test]
    fn cancel_common_roots_removes_pairs() {
        // (s+10)(s+1) / (s+10)(s+2) → (s+1)/(s+2)
        let num = Poly::from_roots(&[-10.0, -1.0]);
        let den = Poly::from_roots(&[-10.0, -2.0]);
        let h = Tf::new(num, den).cancel_common_roots(1e-9);
        assert_eq!(h.poles().len(), 1);
        assert_eq!(h.zeros().len(), 1);
        assert!((h.dc_gain() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn magnitude_crossing_none_when_flat() {
        let h = Tf::constant(0.5);
        assert!(h.unity_gain_freq(1.0, 1e9).is_some()); // already below 1 at f_lo
        let h2 = Tf::constant(2.0);
        assert!(h2.unity_gain_freq(1.0, 1e9).is_none());
    }

    #[test]
    fn eval_matches_manual() {
        let h = Tf::new(Poly::new(vec![0.0, 1.0]), Poly::new(vec![1.0, 1.0]));
        // H(s) = s/(1+s) at s = j: j/(1+j) → |H| = 1/√2
        let v = h.eval(Complex::I);
        assert!((v.norm() - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }
}
