//! Numeric transfer-function extraction by evaluation–interpolation.
//!
//! For transistor-level netlists, symbolic Mason expressions can swell; the
//! synthesis inner loop instead extracts the *numeric* rational transfer
//! function directly: the complex MNA matrix `Y(s)` is sampled at scaled
//! roots of unity `s_k = r·ω_m^k`, where `H(s_k)` comes from a linear solve
//! and `D(s_k) = det Y(s_k)` from LU; since both `N = H·D` and `D` are
//! polynomials of degree ≤ dim, one inverse DFT recovers their exact
//! coefficients. This is the paper's "formulating the numerical transfer
//! function" step, implemented without symbolic overhead.
//!
//! Conditioning note: the sample radius `r` should sit near the circuit's
//! pole cluster (geometric mean); roots many decades away from `r` lose
//! relative accuracy in the recovered coefficients. OTA-scale circuits with
//! poles spanning ~4 decades extract cleanly.

use crate::tf::Tf;
use crate::{SfgError, SfgResult};
use adc_numerics::complex::Complex;
use adc_numerics::fft::fft_in_place;
use adc_numerics::poly::Poly;
use adc_spice::linearize::{ComplexMnaWorkspace, SmallSignal, SolverChoice};
use adc_spice::netlist::{Circuit, NodeId};
use adc_spice::op::OperatingPoint;

/// Options for [`extract_tf`].
#[derive(Debug, Clone, Copy)]
pub struct NetTfOptions {
    /// Sample-circle radius in rad/s — place near the expected pole cluster.
    pub radius: f64,
    /// Relative threshold below which recovered coefficients are zeroed.
    pub trim_rel: f64,
}

impl Default for NetTfOptions {
    fn default() -> Self {
        NetTfOptions {
            radius: 1e8,
            trim_rel: 1e-9,
        }
    }
}

/// Reusable TF-extraction workspace: the circuit is linearized **once per
/// operating point** through the shared [`SmallSignal`] linearizer in
/// adc-spice (the same routine AC analysis stamps from, so the two can
/// never desynchronize); each of the `m` sample frequencies replays only
/// the `s`-dependent entries into the [`ComplexMnaWorkspace`] engine, and a
/// **single** factorization yields both `det Y(s)` (product of pivots) and
/// the solve. On OTA-sized testbenches the engine factors CSR-sparse with
/// a symbolic factorization reused across every sample and every retuned
/// candidate.
///
/// Reused across evaluations of the same testbench (the synthesis inner
/// loop), the matrices, factor buffers and sample vectors all persist.
#[derive(Debug, Default)]
pub struct NetTfWorkspace {
    ss: SmallSignal,
    engine: ComplexMnaWorkspace,
    /// Sample frequencies `r·ω_m^k` of the current extraction.
    s_samples: Vec<Complex>,
    /// Lane-major solutions of the batched solves (`m · dim`).
    xs: Vec<Complex>,
    /// `det Y(s_k)` per sample.
    dets: Vec<Complex>,
    num_samples: Vec<Complex>,
    den_samples: Vec<Complex>,
    /// FFT scratch for the inverse-DFT coefficient recovery.
    work: Vec<Complex>,
    /// Scratch flags for the determinant degree bound.
    row_flags: Vec<bool>,
}

impl NetTfWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        NetTfWorkspace::default()
    }

    /// Overrides the automatic sparse/dense engine selection
    /// (tests/diagnostics; production uses [`SolverChoice::Auto`]).
    pub fn set_solver(&mut self, choice: SolverChoice) {
        self.engine.set_solver(choice);
    }

    /// Whether the complex MNA engine currently factors sparse.
    pub fn is_sparse(&self) -> bool {
        self.engine.is_sparse()
    }

    /// Number of symbolic analyses performed so far (stays constant across
    /// value retuning of one topology — the reuse the synthesis loop relies
    /// on).
    pub fn symbolic_analyses(&self) -> usize {
        self.engine.symbolic_analyses()
    }

    /// (Re)binds the workspace to `circuit` linearized at `op`: rebuilds
    /// the index map and factor pattern only when the topology changed,
    /// then restamps the s-independent base and the capacitive entry list
    /// in place. No g_min is added — it would perturb the sampled
    /// determinant.
    fn bind(&mut self, circuit: &Circuit, op: &OperatingPoint) -> SfgResult<()> {
        let topo = self
            .ss
            .bind(circuit, op, 0.0)
            .map_err(|e| SfgError::BadCircuit(e.to_string()))?;
        // `engine.bind` also rebuilds when its storage is empty (fresh
        // workspace or just-cleared by set_solver), so `topo` only needs
        // to track circuit-side changes.
        self.engine.bind(&self.ss, topo);
        Ok(())
    }

    /// Upper bound on `deg det Y(s)`: every entry of `Y` is affine in `s`
    /// (`g + s·C`), and each term of the determinant expansion takes one
    /// entry per row, so the degree is capped by the number of rows that
    /// carry any `s`-dependent entry. Branch rows (sources) never do, which
    /// makes this bound much tighter than `dim` for amplifier testbenches —
    /// and the numerator (a Cramer determinant of the same matrix with a
    /// constant column substituted) obeys the same bound.
    fn degree_bound(&mut self, dim: usize) -> usize {
        self.row_flags.clear();
        self.row_flags.resize(dim, false);
        for &(i, _, _) in &self.ss.cap_entries {
            self.row_flags[i] = true;
        }
        self.row_flags.iter().filter(|f| **f).count()
    }
}

/// Recovers ascending polynomial coefficients from samples at `r·ω_m^k`,
/// using `work` as FFT scratch.
fn coeffs_from_samples(
    samples: &[Complex],
    work: &mut Vec<Complex>,
    radius: f64,
    trim_rel: f64,
) -> Poly {
    let m = samples.len();
    work.clear();
    work.extend_from_slice(samples);
    // Forward FFT gives m·(coefficient of r^j x^j).
    fft_in_place(work);
    // Trim in the radius-scaled domain, where every legitimate coefficient
    // is comparable to the sample magnitudes; circuit polynomials have
    // wildly scaled raw coefficients (G·G vs C·C), so trimming after the
    // r^j division would delete real high-order terms.
    let max = work.iter().map(|c| c.norm()).fold(0.0, f64::max);
    let mut real = Vec::with_capacity(m);
    let mut rj = 1.0;
    for c in work.iter().take(m) {
        let v = if c.norm() < trim_rel * max { 0.0 } else { c.re };
        real.push(v / (m as f64 * rj));
        rj *= radius;
    }
    Poly::new(real)
}

/// Extracts the numeric transfer function from the circuit's AC stimulus
/// (sources with nonzero `ac_mag`) to the voltage of `output`.
///
/// # Errors
/// [`SfgError::BadCircuit`] if the output is ground or a sample system is
/// singular; [`SfgError::SingularGraph`] if the denominator vanishes.
pub fn extract_tf(
    circuit: &Circuit,
    op: &OperatingPoint,
    output: NodeId,
    opts: &NetTfOptions,
) -> SfgResult<Tf> {
    let mut ws = NetTfWorkspace::new();
    extract_tf_with(&mut ws, circuit, op, output, opts)
}

/// [`extract_tf`] with a caller-owned reusable [`NetTfWorkspace`]: the
/// linearized base is restamped in place per operating point, each sample
/// frequency reuses the factor buffers, and one LU factorization per sample
/// provides both the determinant and the solve.
///
/// # Errors
/// Same contract as [`extract_tf`].
pub fn extract_tf_with(
    ws: &mut NetTfWorkspace,
    circuit: &Circuit,
    op: &OperatingPoint,
    output: NodeId,
    opts: &NetTfOptions,
) -> SfgResult<Tf> {
    ws.bind(circuit, op)?;
    let out_row = ws
        .ss
        .map()
        .node_row(output)
        .ok_or_else(|| SfgError::BadCircuit("output node is ground".into()))?;
    let dim = ws.ss.dim();
    // Degree of det Y(s) ≤ the capacitive-row bound (≤ dim); sample with
    // ≥ 2× margin, power of two.
    let deg = ws.degree_bound(dim).min(dim);
    let m = (2 * (deg + 2)).next_power_of_two();

    ws.num_samples.clear();
    ws.den_samples.clear();
    ws.num_samples.reserve(m);
    ws.den_samples.reserve(m);
    // Sample det Y(s) and the output solve at all m roots of unity through
    // the batched engine: chunks of up to MAX_LANES samples share a single
    // symbolic traversal and SoA factor workspace, with per-sample results
    // (and the demote-to-dense recovery ladder) bit-identical to a serial
    // factor/solve/det loop.
    ws.s_samples.clear();
    for k in 0..m {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / m as f64;
        ws.s_samples.push(Complex::from_polar(opts.radius, theta));
    }
    ws.xs.clear();
    ws.xs.resize(m * dim, Complex::ZERO);
    ws.dets.clear();
    ws.dets.resize(m, Complex::ZERO);
    let singular_err = |k: usize| {
        SfgError::BadCircuit(format!(
            "singular MNA at sample {k} (radius {:.3e})",
            opts.radius
        ))
    };
    ws.engine
        .solve_det_batch(&ws.s_samples, &ws.ss, &ws.ss.b, &mut ws.xs, &mut ws.dets)
        .map_err(|(k, _)| singular_err(k))?;
    for k in 0..m {
        let det = ws.dets[k];
        if det.norm() == 0.0 {
            return Err(singular_err(k));
        }
        let h = ws.xs[k * dim + out_row];
        ws.num_samples.push(h * det);
        ws.den_samples.push(det);
    }

    // Normalize sample scale (in place) to keep the DFT well-conditioned.
    let dscale = ws.den_samples.iter().map(|d| d.norm()).fold(0.0, f64::max);
    if dscale == 0.0 {
        return Err(SfgError::SingularGraph);
    }
    let nscale = ws
        .num_samples
        .iter()
        .map(|d| d.norm())
        .fold(0.0, f64::max)
        .max(1e-300);
    ws.den_samples.iter_mut().for_each(|d| *d = *d / dscale);
    ws.num_samples.iter_mut().for_each(|n| *n = *n / nscale);

    let den = coeffs_from_samples(&ws.den_samples, &mut ws.work, opts.radius, opts.trim_rel);
    let num = coeffs_from_samples(&ws.num_samples, &mut ws.work, opts.radius, opts.trim_rel)
        .scale(nscale / dscale);
    if den.is_zero() {
        return Err(SfgError::SingularGraph);
    }
    Ok(Tf::new(num, den))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_spice::dc::{dc_operating_point, DcOptions};
    use adc_spice::netlist::Circuit;
    use adc_spice::process::Process;

    #[test]
    fn rc_lowpass_exact() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", vin, out, 1e3);
        c.add_capacitor("C1", out, Circuit::GROUND, 1e-9);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let tf = extract_tf(
            &c,
            &op,
            out,
            &NetTfOptions {
                radius: 1e6,
                trim_rel: 1e-9,
            },
        )
        .unwrap()
        .cancel_common_roots(1e-6);
        assert!((tf.dc_gain() - 1.0).abs() < 1e-9);
        let poles = tf.poles();
        assert_eq!(poles.len(), 1, "poles: {poles:?}");
        assert!((poles[0].re + 1e6).abs() < 1.0, "pole {:?}", poles[0]);
    }

    #[test]
    fn common_source_matches_dpi_and_sweep() {
        let p = Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource_wave("VG", g, Circuit::GROUND, 0.8.into(), 1.0);
        c.add_resistor("RD", vdd, d, 10e3);
        c.add_capacitor("CL", d, Circuit::GROUND, 1e-12);
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            5e-6,
            0.5e-6,
        );
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let tf = extract_tf(
            &c,
            &op,
            d,
            &NetTfOptions {
                radius: 1e8,
                trim_rel: 1e-10,
            },
        )
        .unwrap();
        let dpi = crate::dpi::DpiSfg::build(&c, &op, g).unwrap();
        let tf_dpi = dpi.tf(d).unwrap();
        for f in [1e3, 1e6, 100e6, 1e9] {
            let a = tf.eval_at_freq(f);
            let b = tf_dpi.eval_at_freq(f);
            let err = (a - b).norm() / b.norm().max(1e-12);
            // Interpolation conditioning limits agreement to ~1e-5 here.
            assert!(err < 1e-4, "f = {f}: nettf {a} vs mason {b}");
        }
    }

    #[test]
    fn two_pole_macromodel_pole_recovery() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let n1 = c.node("n1");
        let out = c.node("out");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_vccs("Gm1", Circuit::GROUND, n1, vin, Circuit::GROUND, -1e-3);
        c.add_resistor("Ro1", n1, Circuit::GROUND, 100e3);
        c.add_capacitor("Cp1", n1, Circuit::GROUND, 1e-12); // pole at 1e7 rad/s
        c.add_vccs("Gm2", Circuit::GROUND, out, n1, Circuit::GROUND, -2e-3);
        c.add_resistor("Ro2", out, Circuit::GROUND, 10e3);
        c.add_capacitor("CL", out, Circuit::GROUND, 1e-12); // pole at 1e8 rad/s
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let tf = extract_tf(
            &c,
            &op,
            out,
            &NetTfOptions {
                radius: 3e7,
                trim_rel: 1e-10,
            },
        )
        .unwrap()
        .cancel_common_roots(1e-6);
        let mut poles: Vec<f64> = tf.poles().iter().map(|p| -p.re).collect();
        poles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(poles.len(), 2, "{poles:?}");
        assert!((poles[0] - 1e7).abs() < 1e3, "{poles:?}");
        assert!((poles[1] - 1e8).abs() < 1e4, "{poles:?}");
        // A0 = (gm1 ro1)(gm2 ro2) = 100 · 20 = 2000.
        assert!((tf.dc_gain() - 2000.0).abs() < 0.1);
    }

    #[test]
    fn output_at_ground_rejected() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", vin, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!(extract_tf(&c, &op, Circuit::GROUND, &NetTfOptions::default()).is_err());
    }
}
