//! # adc-sfg
//!
//! Driving-Point-Impedance / Signal-Flow-Graph circuit analysis — the
//! "equation" half of the paper's hybrid evaluation (§3):
//!
//! 1. [`sym`]/[`sympoly`]/[`rational`] — a small symbolic algebra:
//!    scalar expressions over named small-signal parameters, polynomials in
//!    the Laplace variable `s` over those expressions, and symbolic rational
//!    transfer functions.
//! 2. [`graph`]/[`mason`] — signal-flow graphs with forward-path and loop
//!    enumeration, and **Mason's gain formula** computing the symbolic
//!    transfer function.
//! 3. [`dpi`] — construction of the DPI/SFG equivalent of a linearized
//!    circuit: every node equation `V_i = DPI_i · ΣI` becomes SFG edges with
//!    gains `−Y_ij/Y_ii`, exactly as the paper describes.
//! 4. [`tf`] — numeric rational transfer functions and AC characteristics
//!    (poles/zeros, DC gain, unity-gain frequency, phase margin).
//! 5. [`nettf`] — a robust numeric transfer-function extractor
//!    (evaluation–interpolation on the complex MNA determinant) used inside
//!    synthesis loops where symbolic expression swell would be wasteful;
//!    cross-validated against Mason and against AC sweeps in the tests.
//!
//! ## Example: symbolic RC low-pass via Mason
//!
//! ```
//! use adc_sfg::graph::Sfg;
//! use adc_sfg::mason::mason_transfer;
//! use adc_sfg::rational::SymRational;
//! use adc_sfg::sympoly::SymPoly;
//! use adc_sfg::sym::SymExpr;
//!
//! // V_out = (g/(g + sC)) · V_in : one edge, no loops.
//! let mut sfg = Sfg::new();
//! let vin = sfg.node("vin");
//! let vout = sfg.node("vout");
//! let g = SymExpr::sym("g");
//! let c = SymExpr::sym("c");
//! let num = SymPoly::constant(g.clone());
//! let den = SymPoly::new(vec![g, c]); // g + s·c
//! sfg.add_edge(vin, vout, SymRational::new(num, den));
//! let h = mason_transfer(&sfg, vin, vout).unwrap();
//! let tf = h.eval(&[("g", 1e-3), ("c", 1e-9)].into_iter()
//!     .map(|(k, v)| (k.to_string(), v)).collect()).unwrap();
//! assert!((tf.dc_gain() - 1.0).abs() < 1e-12);
//! ```

pub mod dpi;
pub mod graph;
pub mod mason;
pub mod nettf;
pub mod rational;
pub mod sym;
pub mod sympoly;
pub mod tf;

pub use dpi::DpiSfg;
pub use graph::Sfg;
pub use rational::SymRational;
pub use sym::SymExpr;
pub use sympoly::SymPoly;
pub use tf::Tf;

/// Errors from symbolic/graph analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SfgError {
    /// A symbol had no value in the provided bindings.
    UnboundSymbol(String),
    /// The requested transfer function does not exist (no forward path).
    NoForwardPath {
        /// Source node name.
        from: String,
        /// Sink node name.
        to: String,
    },
    /// Graph determinant (Mason Δ) evaluated to structural zero.
    SingularGraph,
    /// DPI construction failed (unsupported element, degenerate node...).
    BadCircuit(String),
}

impl std::fmt::Display for SfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SfgError::UnboundSymbol(s) => write!(f, "unbound symbol: {s}"),
            SfgError::NoForwardPath { from, to } => {
                write!(f, "no forward path from {from} to {to}")
            }
            SfgError::SingularGraph => write!(f, "signal-flow graph determinant is zero"),
            SfgError::BadCircuit(msg) => write!(f, "cannot build DPI/SFG: {msg}"),
        }
    }
}

impl std::error::Error for SfgError {}

/// Result alias for this crate.
pub type SfgResult<T> = Result<T, SfgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(SfgError::UnboundSymbol("gm".into())
            .to_string()
            .contains("gm"));
        let e = SfgError::NoForwardPath {
            from: "a".into(),
            to: "b".into(),
        };
        assert!(e.to_string().contains("a") && e.to_string().contains("b"));
        assert!(!SfgError::SingularGraph.to_string().is_empty());
        assert!(SfgError::BadCircuit("x".into()).to_string().contains("x"));
    }
}
