//! Polynomials in the Laplace variable `s` with symbolic coefficients.

use crate::sym::SymExpr;
use crate::SfgResult;
use adc_numerics::Poly;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A polynomial `Σ cₖ·sᵏ` whose coefficients are [`SymExpr`]s.
///
/// Trailing structural-zero coefficients are trimmed; the zero polynomial
/// has no coefficients.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SymPoly {
    coeffs: Vec<SymExpr>,
}

impl SymPoly {
    /// Creates a polynomial from ascending coefficients.
    pub fn new(coeffs: Vec<SymExpr>) -> Self {
        let mut p = SymPoly { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        SymPoly { coeffs: Vec::new() }
    }

    /// The constant polynomial 1.
    pub fn one() -> Self {
        SymPoly {
            coeffs: vec![SymExpr::one()],
        }
    }

    /// A constant (degree-0) polynomial.
    pub fn constant(c: SymExpr) -> Self {
        SymPoly::new(vec![c])
    }

    /// The monomial `s`.
    pub fn s() -> Self {
        SymPoly {
            coeffs: vec![SymExpr::zero(), SymExpr::one()],
        }
    }

    /// The monomial `c·s`.
    pub fn s_times(c: SymExpr) -> Self {
        SymPoly::new(vec![SymExpr::zero(), c])
    }

    /// Ascending coefficients.
    pub fn coeffs(&self) -> &[SymExpr] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Structural zero test.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Structural one test.
    pub fn is_one(&self) -> bool {
        self.coeffs.len() == 1 && self.coeffs[0].is_one()
    }

    fn trim(&mut self) {
        while matches!(self.coeffs.last(), Some(c) if c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// Coefficient of `sᵏ` (structural zero beyond the stored degree).
    pub fn coeff(&self, k: usize) -> SymExpr {
        self.coeffs.get(k).cloned().unwrap_or_else(SymExpr::zero)
    }

    /// Scales every coefficient by `k`.
    pub fn scale(&self, k: &SymExpr) -> SymPoly {
        SymPoly::new(
            self.coeffs
                .iter()
                .map(|c| SymExpr::mul(c.clone(), k.clone()))
                .collect(),
        )
    }

    /// Evaluates to a numeric [`Poly`] with the given bindings.
    ///
    /// # Errors
    /// Propagates [`crate::SfgError::UnboundSymbol`].
    pub fn eval(&self, bindings: &HashMap<String, f64>) -> SfgResult<Poly> {
        let mut c = Vec::with_capacity(self.coeffs.len());
        for e in &self.coeffs {
            c.push(e.eval(bindings)?);
        }
        Ok(Poly::new(c))
    }

    /// Collects all symbols.
    pub fn symbols(&self) -> BTreeSet<String> {
        let mut s = BTreeSet::new();
        for c in &self.coeffs {
            c.collect_symbols(&mut s);
        }
        s
    }

    /// Total expression size across coefficients.
    pub fn size(&self) -> usize {
        self.coeffs.iter().map(SymExpr::size).sum()
    }
}

impl fmt::Display for SymPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            match k {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·s")?,
                _ => write!(f, "{c}·s^{k}")?,
            }
            first = false;
        }
        Ok(())
    }
}

impl Add for &SymPoly {
    type Output = SymPoly;
    fn add(self, rhs: &SymPoly) -> SymPoly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        SymPoly::new(
            (0..n)
                .map(|k| SymExpr::add(self.coeff(k), rhs.coeff(k)))
                .collect(),
        )
    }
}

impl Sub for &SymPoly {
    type Output = SymPoly;
    fn sub(self, rhs: &SymPoly) -> SymPoly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        SymPoly::new(
            (0..n)
                .map(|k| SymExpr::add(self.coeff(k), SymExpr::negate(rhs.coeff(k))))
                .collect(),
        )
    }
}

impl Mul for &SymPoly {
    type Output = SymPoly;
    fn mul(self, rhs: &SymPoly) -> SymPoly {
        if self.is_zero() || rhs.is_zero() {
            return SymPoly::zero();
        }
        let mut c = vec![SymExpr::zero(); self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in rhs.coeffs.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                let term = SymExpr::mul(a.clone(), b.clone());
                c[i + j] = SymExpr::add(std::mem::take(&mut c[i + j]), term);
            }
        }
        SymPoly::new(c)
    }
}

impl Neg for &SymPoly {
    type Output = SymPoly;
    fn neg(self) -> SymPoly {
        SymPoly::new(
            self.coeffs
                .iter()
                .map(|c| SymExpr::negate(c.clone()))
                .collect(),
        )
    }
}

impl Add for SymPoly {
    type Output = SymPoly;
    fn add(self, rhs: SymPoly) -> SymPoly {
        &self + &rhs
    }
}

impl Sub for SymPoly {
    type Output = SymPoly;
    fn sub(self, rhs: SymPoly) -> SymPoly {
        &self - &rhs
    }
}

impl Mul for SymPoly {
    type Output = SymPoly;
    fn mul(self, rhs: SymPoly) -> SymPoly {
        &self * &rhs
    }
}

impl Neg for SymPoly {
    type Output = SymPoly;
    fn neg(self) -> SymPoly {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn rc_denominator() {
        // g + s·c
        let p = SymPoly::new(vec![SymExpr::sym("g"), SymExpr::sym("c")]);
        assert_eq!(p.degree(), Some(1));
        let num = p.eval(&bind(&[("g", 1e-3), ("c", 1e-9)])).unwrap();
        assert_eq!(num.coeffs(), &[1e-3, 1e-9]);
    }

    #[test]
    fn product_matches_numeric() {
        let a = SymPoly::new(vec![SymExpr::sym("x"), SymExpr::one()]); // x + s
        let b = SymPoly::new(vec![SymExpr::sym("y"), SymExpr::one()]); // y + s
        let p = &a * &b;
        let n = p.eval(&bind(&[("x", 2.0), ("y", 3.0)])).unwrap();
        // (2+s)(3+s) = 6 + 5s + s^2
        assert_eq!(n.coeffs(), &[6.0, 5.0, 1.0]);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = SymPoly::new(vec![SymExpr::sym("x"), SymExpr::sym("y")]);
        let b = SymPoly::s();
        let c = &(&a + &b) - &b;
        let bn = bind(&[("x", 1.5), ("y", -2.0)]);
        assert_eq!(c.eval(&bn).unwrap(), a.eval(&bn).unwrap());
    }

    #[test]
    fn zero_and_one() {
        assert!(SymPoly::zero().is_zero());
        assert!(SymPoly::one().is_one());
        assert!((&SymPoly::zero() * &SymPoly::s()).is_zero());
        let p = SymPoly::new(vec![SymExpr::zero(), SymExpr::zero()]);
        assert!(p.is_zero());
    }

    #[test]
    fn display_contains_s_powers() {
        let p = SymPoly::new(vec![SymExpr::sym("a"), SymExpr::zero(), SymExpr::sym("b")]);
        let s = p.to_string();
        assert!(s.contains("s^2"));
        assert!(!s.contains("s^1"));
        assert_eq!(SymPoly::zero().to_string(), "0");
    }

    #[test]
    fn symbols_union() {
        let p = SymPoly::new(vec![SymExpr::sym("a"), SymExpr::sym("b")]);
        let syms: Vec<_> = p.symbols().into_iter().collect();
        assert_eq!(syms, vec!["a", "b"]);
    }
}
