//! Driving-Point-Impedance SFG construction from a linearized circuit.
//!
//! The DPI/SFG method rewrites each KCL node equation `Σⱼ Y_ij·Vⱼ = J_i` as
//! `V_i = (1/Y_ii)·(J_i − Σ_{j≠i} Y_ij·Vⱼ)`: node *i*'s driving-point
//! impedance `1/Y_ii` times the injected currents. In SFG form this is an
//! edge from every neighbour `Vⱼ` into `V_i` with gain `−Y_ij/Y_ii` — the
//! graph the paper draws before applying Mason's rule.
//!
//! Construction is symbolic: every small-signal parameter becomes a named
//! symbol (`gm_M1`, `cgs_M1`, `g_R1` …) and the numeric values extracted
//! from the DC operating point are returned as bindings, so one symbolic
//! analysis can be re-evaluated for many bias points ("retargeting").

use crate::graph::{Sfg, SfgNode};
use crate::mason::mason_transfer;
use crate::rational::SymRational;
use crate::sym::SymExpr;
use crate::sympoly::SymPoly;
use crate::tf::Tf;
use crate::{SfgError, SfgResult};
use adc_spice::netlist::{Circuit, Element, NodeId};
use adc_spice::op::OperatingPoint;
use std::collections::HashMap;

/// A symbolic DPI/SFG model of a linearized circuit, with the numeric
/// bindings extracted from its operating point.
#[derive(Debug, Clone)]
pub struct DpiSfg {
    sfg: Sfg,
    input: SfgNode,
    bindings: HashMap<String, f64>,
    node_map: HashMap<usize, SfgNode>,
}

/// Per-entry symbolic admittance: conductance part + s·capacitance part.
#[derive(Default, Clone)]
struct YEntry {
    g: SymExpr,
    c: SymExpr,
}

impl YEntry {
    fn add_g(&mut self, e: SymExpr) {
        self.g = SymExpr::add(std::mem::take(&mut self.g), e);
    }
    fn add_c(&mut self, e: SymExpr) {
        self.c = SymExpr::add(std::mem::take(&mut self.c), e);
    }
    fn to_poly(&self) -> SymPoly {
        SymPoly::new(vec![self.g.clone(), self.c.clone()])
    }
}

impl DpiSfg {
    /// Builds the DPI/SFG of `circuit`, linearized at `op`, driven by an
    /// ideal source at `input`.
    ///
    /// Nodes pinned by DC-only voltage sources become AC ground; the input
    /// node is treated as an ideal driven source. VCVS elements are not
    /// supported (the OTA templates don't use them), nor are voltage sources
    /// floating between two non-ground nodes.
    ///
    /// # Errors
    /// [`SfgError::BadCircuit`] on unsupported topologies or floating nodes.
    pub fn build(circuit: &Circuit, op: &OperatingPoint, input: NodeId) -> SfgResult<DpiSfg> {
        // Classify: fixed nodes = pinned by any VSource (AC ground unless
        // they are the designated input).
        let mut fixed = vec![false; circuit.node_count()];
        fixed[0] = true;
        for e in circuit.elements() {
            match e {
                Element::VSource { name, p, n, .. } => {
                    if !p.is_ground() && !n.is_ground() {
                        return Err(SfgError::BadCircuit(format!(
                            "floating voltage source {name} (both terminals off ground)"
                        )));
                    }
                    fixed[p.index()] = true;
                    fixed[n.index()] = true;
                }
                Element::Vcvs { name, .. } => {
                    return Err(SfgError::BadCircuit(format!(
                        "VCVS {name} not supported by DPI analysis"
                    )));
                }
                _ => {}
            }
        }
        if input.is_ground() {
            return Err(SfgError::BadCircuit("input node is ground".into()));
        }

        let n = circuit.node_count();
        let mut y: Vec<Vec<YEntry>> = vec![vec![YEntry::default(); n]; n];
        let mut bindings = HashMap::new();

        let stamp_adm =
            |y: &mut Vec<Vec<YEntry>>, a: NodeId, b: NodeId, e: SymExpr, is_cap: bool| {
                let (ia, ib) = (a.index(), b.index());
                if is_cap {
                    y[ia][ia].add_c(e.clone());
                    y[ib][ib].add_c(e.clone());
                    y[ia][ib].add_c(SymExpr::negate(e.clone()));
                    y[ib][ia].add_c(SymExpr::negate(e));
                } else {
                    y[ia][ia].add_g(e.clone());
                    y[ib][ib].add_g(e.clone());
                    y[ia][ib].add_g(SymExpr::negate(e.clone()));
                    y[ib][ia].add_g(SymExpr::negate(e));
                }
            };
        let stamp_gm = |y: &mut Vec<Vec<YEntry>>,
                        p: NodeId,
                        nn: NodeId,
                        cp: NodeId,
                        cn: NodeId,
                        e: SymExpr| {
            // Current gm·v(cp−cn) leaving p, entering nn.
            y[p.index()][cp.index()].add_g(e.clone());
            y[p.index()][cn.index()].add_g(SymExpr::negate(e.clone()));
            y[nn.index()][cp.index()].add_g(SymExpr::negate(e.clone()));
            y[nn.index()][cn.index()].add_g(e);
        };

        for e in circuit.elements() {
            match e {
                Element::Resistor { name, a, b, ohms } => {
                    let s = format!("g_{name}");
                    bindings.insert(s.clone(), 1.0 / ohms);
                    stamp_adm(&mut y, *a, *b, SymExpr::sym(&s), false);
                }
                Element::Capacitor { name, a, b, farads } => {
                    let s = format!("c_{name}");
                    bindings.insert(s.clone(), *farads);
                    stamp_adm(&mut y, *a, *b, SymExpr::sym(&s), true);
                }
                Element::Switch {
                    name,
                    a,
                    b,
                    ron,
                    roff,
                    dc_closed,
                    ..
                } => {
                    let s = format!("g_{name}");
                    bindings.insert(s.clone(), 1.0 / if *dc_closed { *ron } else { *roff });
                    stamp_adm(&mut y, *a, *b, SymExpr::sym(&s), false);
                }
                Element::Vccs {
                    name,
                    p,
                    n: nn,
                    cp,
                    cn,
                    gm,
                } => {
                    let s = format!("gm_{name}");
                    bindings.insert(s.clone(), *gm);
                    stamp_gm(&mut y, *p, *nn, *cp, *cn, SymExpr::sym(&s));
                }
                Element::Mosfet {
                    name, d, g, s, b, ..
                } => {
                    let ev = op.mos_eval(name).ok_or_else(|| {
                        SfgError::BadCircuit(format!("no operating point for {name}"))
                    })?;
                    let gm = format!("gm_{name}");
                    let gds = format!("gds_{name}");
                    let gmb = format!("gmb_{name}");
                    bindings.insert(gm.clone(), ev.gm);
                    bindings.insert(gds.clone(), ev.gds);
                    bindings.insert(gmb.clone(), ev.gmb);
                    stamp_gm(&mut y, *d, *s, *g, *s, SymExpr::sym(&gm));
                    stamp_gm(&mut y, *d, *s, *d, *s, SymExpr::sym(&gds));
                    stamp_gm(&mut y, *d, *s, *b, *s, SymExpr::sym(&gmb));
                    for (cname, val, na, nb) in [
                        ("cgs", ev.cgs, *g, *s),
                        ("cgd", ev.cgd, *g, *d),
                        ("cgb", ev.cgb, *g, *b),
                        ("csb", ev.csb, *s, *b),
                        ("cdb", ev.cdb, *d, *b),
                    ] {
                        if val > 0.0 {
                            let sym = format!("{cname}_{name}");
                            bindings.insert(sym.clone(), val);
                            stamp_adm(&mut y, na, nb, SymExpr::sym(&sym), true);
                        }
                    }
                }
                Element::VSource { .. } | Element::ISource { .. } => {}
                Element::Vcvs { .. } => unreachable!("rejected above"),
            }
        }

        // Build the SFG over unknown nodes + the input.
        let mut sfg = Sfg::new();
        let input_node = sfg.node(circuit.node_name(input));
        let mut node_map = HashMap::new();
        node_map.insert(input.index(), input_node);
        let unknowns: Vec<usize> = (1..n)
            .filter(|&i| !fixed[i] && i != input.index())
            .collect();
        for &i in &unknowns {
            let sn = sfg.node(circuit.node_name(NodeId::from_index(i)));
            node_map.insert(i, sn);
        }
        for &i in &unknowns {
            let yii = y[i][i].to_poly();
            if yii.is_zero() {
                return Err(SfgError::BadCircuit(format!(
                    "node {} is floating (zero self-admittance)",
                    circuit.node_name(NodeId::from_index(i))
                )));
            }
            for (&j, &from_sfg) in &node_map {
                if j == i {
                    continue;
                }
                let yij = y[i][j].to_poly();
                if yij.is_zero() {
                    continue;
                }
                let gain = SymRational::new(-&yij, yii.clone());
                sfg.add_edge(from_sfg, node_map[&i], gain);
            }
        }

        Ok(DpiSfg {
            sfg,
            input: input_node,
            bindings,
            node_map,
        })
    }

    /// The underlying signal-flow graph.
    pub fn sfg(&self) -> &Sfg {
        &self.sfg
    }

    /// The SFG node representing the driven input.
    pub fn input_node(&self) -> SfgNode {
        self.input
    }

    /// Symbol bindings extracted from the operating point.
    pub fn bindings(&self) -> &HashMap<String, f64> {
        &self.bindings
    }

    /// SFG node of a circuit node, if it participates in the graph.
    pub fn sfg_node(&self, node: NodeId) -> Option<SfgNode> {
        self.node_map.get(&node.index()).copied()
    }

    /// Symbolic transfer function from the input to `output` (Mason).
    ///
    /// # Errors
    /// [`SfgError::BadCircuit`] if `output` is not an SFG node;
    /// [`SfgError::NoForwardPath`] if unreachable.
    pub fn transfer(&self, output: NodeId) -> SfgResult<SymRational> {
        let out = self.sfg_node(output).ok_or_else(|| {
            SfgError::BadCircuit(format!("output node index {} not in SFG", output.index()))
        })?;
        mason_transfer(&self.sfg, self.input, out)
    }

    /// Numeric transfer function from input to `output` with the extracted
    /// bindings.
    ///
    /// # Errors
    /// Propagates [`DpiSfg::transfer`] and binding errors.
    pub fn tf(&self, output: NodeId) -> SfgResult<Tf> {
        self.transfer(output)?.eval(&self.bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_spice::dc::{dc_operating_point, DcOptions};
    use adc_spice::process::Process;

    #[test]
    fn rc_divider_symbolic_and_numeric() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", vin, out, 1e3);
        c.add_resistor("R2", out, Circuit::GROUND, 1e3);
        c.add_capacitor("C1", out, Circuit::GROUND, 1e-9);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let dpi = DpiSfg::build(&c, &op, vin).unwrap();
        let sym_tf = dpi.transfer(out).unwrap();
        // Symbols present: g_R1, g_R2, c_C1.
        let syms = sym_tf.symbols();
        assert!(syms.contains("g_R1") && syms.contains("g_R2") && syms.contains("c_C1"));
        let tf = dpi.tf(out).unwrap();
        assert!((tf.dc_gain() - 0.5).abs() < 1e-12);
        // Pole at (g1+g2)/C = 2e-3/1e-9 = 2e6 rad/s.
        let poles = tf.poles();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re + 2e6).abs() < 1.0);
    }

    #[test]
    fn common_source_matches_ac_sweep() {
        let p = Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource_wave("VG", g, Circuit::GROUND, 0.8.into(), 1.0);
        c.add_resistor("RD", vdd, d, 10e3);
        c.add_capacitor("CL", d, Circuit::GROUND, 1e-12);
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            5e-6,
            0.5e-6,
        );
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let dpi = DpiSfg::build(&c, &op, g).unwrap();
        let tf = dpi.tf(d).unwrap();
        let freqs = [1e3, 1e6, 100e6, 1e9];
        let sweep = adc_spice::ac::ac_sweep(&c, &op, &freqs).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let h_dpi = tf.eval_at_freq(f);
            let h_ac = sweep.voltage(d, k);
            let err = (h_dpi - h_ac).norm() / h_ac.norm().max(1e-12);
            assert!(err < 1e-6, "f = {f}: DPI {h_dpi} vs AC {h_ac} (err {err})");
        }
    }

    /// Two-stage amplifier with Miller feedback capacitor: the cgd/cc path
    /// creates a loop in the SFG — Mason must handle it.
    #[test]
    fn two_stage_miller_matches_ac_sweep() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let n1 = c.node("n1");
        let out = c.node("out");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        // Stage 1: gm1 = 1 mS into 100 kΩ ∥ 100 fF.
        c.add_vccs("Gm1", Circuit::GROUND, n1, vin, Circuit::GROUND, -1e-3);
        c.add_resistor("Ro1", n1, Circuit::GROUND, 100e3);
        c.add_capacitor("Cp1", n1, Circuit::GROUND, 100e-15);
        // Stage 2: gm2 = 5 mS into 50 kΩ ∥ 1 pF, with 0.5 pF Miller cap.
        c.add_vccs("Gm2", Circuit::GROUND, out, n1, Circuit::GROUND, -5e-3);
        c.add_resistor("Ro2", out, Circuit::GROUND, 50e3);
        c.add_capacitor("CL", out, Circuit::GROUND, 1e-12);
        c.add_capacitor("Cc", n1, out, 0.5e-12);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let dpi = DpiSfg::build(&c, &op, vin).unwrap();
        // The Miller cap makes n1↔out a loop.
        assert!(!dpi.sfg().loops().is_empty(), "expected a feedback loop");
        let tf = dpi.tf(out).unwrap();
        let freqs = [1e2, 1e4, 1e6, 1e8];
        let sweep = adc_spice::ac::ac_sweep(&c, &op, &freqs).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let h_dpi = tf.eval_at_freq(f);
            let h_ac = sweep.voltage(out, k);
            let err = (h_dpi - h_ac).norm() / h_ac.norm().max(1e-12);
            assert!(err < 1e-6, "f = {f}: DPI {h_dpi} vs AC {h_ac} (err {err})");
        }
        // DC gain = gm1·ro1·gm2·ro2 = 100 · 250 = 25000.
        assert!((tf.dc_gain() - 25000.0).abs() < 1.0);
    }

    #[test]
    fn rejects_vcvs_and_floating_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource_wave("V1", a, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0);
        c.add_resistor("R1", a, b, 1e3);
        let op_err = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!(matches!(
            DpiSfg::build(&c, &op_err, a),
            Err(SfgError::BadCircuit(_))
        ));
    }

    #[test]
    fn floating_node_detected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("floaty");
        c.add_vsource_wave("V1", a, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        // "floaty" connects to nothing — give it an element so it exists in
        // the node list but with no admittance: a 0-current ISource.
        c.add_isource("I1", f, Circuit::GROUND, 0.0);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        match DpiSfg::build(&c, &op, a) {
            Err(SfgError::BadCircuit(msg)) => assert!(msg.contains("floating")),
            other => panic!("{other:?}"),
        }
    }
}
