//! Symbolic rational functions of `s` — the transfer-function algebra that
//! Mason's gain formula operates on.
//!
//! Addition shares structurally equal denominators (the common case in
//! DPI/SFG graphs, where every edge into node *i* carries the same `Y_ii`
//! denominator), which keeps symbolic growth in check.

use crate::sym::SymExpr;
use crate::sympoly::SymPoly;
use crate::tf::Tf;
use crate::{SfgError, SfgResult};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A symbolic rational function `num(s)/den(s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymRational {
    num: SymPoly,
    den: SymPoly,
}

impl SymRational {
    /// Creates `num/den`.
    ///
    /// # Panics
    /// Panics if `den` is structurally zero.
    pub fn new(num: SymPoly, den: SymPoly) -> Self {
        assert!(!den.is_zero(), "rational function with zero denominator");
        SymRational { num, den }
    }

    /// A polynomial as a rational (denominator 1).
    pub fn from_poly(p: SymPoly) -> Self {
        SymRational {
            num: p,
            den: SymPoly::one(),
        }
    }

    /// A scalar expression as a rational.
    pub fn from_expr(e: SymExpr) -> Self {
        SymRational::from_poly(SymPoly::constant(e))
    }

    /// The rational 0.
    pub fn zero() -> Self {
        SymRational::from_poly(SymPoly::zero())
    }

    /// The rational 1.
    pub fn one() -> Self {
        SymRational::from_poly(SymPoly::one())
    }

    /// Numerator polynomial.
    pub fn num(&self) -> &SymPoly {
        &self.num
    }

    /// Denominator polynomial.
    pub fn den(&self) -> &SymPoly {
        &self.den
    }

    /// Structural zero test.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Structural one test.
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// Reciprocal.
    ///
    /// # Panics
    /// Panics if the numerator is structurally zero.
    pub fn inv(&self) -> SymRational {
        assert!(!self.num.is_zero(), "inverting the zero rational");
        SymRational {
            num: self.den.clone(),
            den: self.num.clone(),
        }
    }

    /// Evaluates to a numeric transfer function.
    ///
    /// # Errors
    /// [`SfgError::UnboundSymbol`] for missing bindings; [`SfgError::SingularGraph`]
    /// if the denominator evaluates to the zero polynomial.
    pub fn eval(&self, bindings: &HashMap<String, f64>) -> SfgResult<Tf> {
        let num = self.num.eval(bindings)?;
        let den = self.den.eval(bindings)?;
        if den.is_zero() {
            return Err(SfgError::SingularGraph);
        }
        Ok(Tf::new(num, den))
    }

    /// All symbols in numerator and denominator.
    pub fn symbols(&self) -> BTreeSet<String> {
        let mut s = self.num.symbols();
        s.extend(self.den.symbols());
        s
    }

    /// Total symbolic size (expression-tree nodes).
    pub fn size(&self) -> usize {
        self.num.size() + self.den.size()
    }
}

impl Default for SymRational {
    fn default() -> Self {
        SymRational::zero()
    }
}

impl fmt::Display for SymRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "[{}] / [{}]", self.num, self.den)
        }
    }
}

impl Add for &SymRational {
    type Output = SymRational;
    fn add(self, rhs: &SymRational) -> SymRational {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.den == rhs.den {
            return SymRational::new(&self.num + &rhs.num, self.den.clone());
        }
        SymRational::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &SymRational {
    type Output = SymRational;
    fn sub(self, rhs: &SymRational) -> SymRational {
        self + &(-rhs)
    }
}

impl Mul for &SymRational {
    type Output = SymRational;
    fn mul(self, rhs: &SymRational) -> SymRational {
        if self.is_zero() || rhs.is_zero() {
            return SymRational::zero();
        }
        if self.is_one() {
            return rhs.clone();
        }
        if rhs.is_one() {
            return self.clone();
        }
        // Cross-cancellation of structurally equal polynomials.
        if self.num == rhs.den {
            return SymRational::new(rhs.num.clone(), self.den.clone());
        }
        if rhs.num == self.den {
            return SymRational::new(self.num.clone(), rhs.den.clone());
        }
        SymRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Neg for &SymRational {
    type Output = SymRational;
    fn neg(self) -> SymRational {
        SymRational::new(-&self.num, self.den.clone())
    }
}

impl Add for SymRational {
    type Output = SymRational;
    fn add(self, rhs: SymRational) -> SymRational {
        &self + &rhs
    }
}

impl Sub for SymRational {
    type Output = SymRational;
    fn sub(self, rhs: SymRational) -> SymRational {
        &self - &rhs
    }
}

impl Mul for SymRational {
    type Output = SymRational;
    fn mul(self, rhs: SymRational) -> SymRational {
        &self * &rhs
    }
}

impl Neg for SymRational {
    type Output = SymRational;
    fn neg(self) -> SymRational {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn sp(syms: &[&str]) -> SymPoly {
        SymPoly::new(syms.iter().map(|s| SymExpr::sym(s)).collect())
    }

    #[test]
    fn shared_denominator_addition_does_not_grow() {
        let a = SymRational::new(sp(&["a"]), sp(&["g", "c"]));
        let b = SymRational::new(sp(&["b"]), sp(&["g", "c"]));
        let s = &a + &b;
        assert_eq!(s.den(), &sp(&["g", "c"]));
        let tf = s
            .eval(&bind(&[("a", 1.0), ("b", 2.0), ("g", 1.0), ("c", 1.0)]))
            .unwrap();
        assert!((tf.dc_gain() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn general_addition_cross_multiplies() {
        let a = SymRational::new(sp(&["a"]), sp(&["p"]));
        let b = SymRational::new(sp(&["b"]), sp(&["q"]));
        let s = &a + &b;
        let tf = s
            .eval(&bind(&[("a", 1.0), ("b", 1.0), ("p", 2.0), ("q", 4.0)]))
            .unwrap();
        assert!((tf.dc_gain() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn multiplication_and_inverse() {
        let a = SymRational::new(sp(&["a"]), sp(&["b"]));
        let prod = &a * &a.inv();
        let tf = prod.eval(&bind(&[("a", 3.0), ("b", 7.0)])).unwrap();
        assert!((tf.dc_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_cancellation() {
        let a = SymRational::new(sp(&["x"]), sp(&["y"]));
        let b = SymRational::new(sp(&["y"]), sp(&["z"]));
        let p = &a * &b;
        // (x/y)(y/z) = x/z structurally
        assert_eq!(p.num(), &sp(&["x"]));
        assert_eq!(p.den(), &sp(&["z"]));
    }

    #[test]
    fn zero_and_one_short_circuits() {
        let a = SymRational::new(sp(&["x"]), sp(&["y"]));
        assert!((&a * &SymRational::zero()).is_zero());
        assert_eq!(&a * &SymRational::one(), a);
        assert_eq!(&SymRational::zero() + &a, a);
    }

    #[test]
    fn eval_detects_zero_denominator() {
        let a = SymRational::new(sp(&["x"]), sp(&["y"]));
        let r = a.eval(&bind(&[("x", 1.0), ("y", 0.0)]));
        assert_eq!(r, Err(SfgError::SingularGraph));
    }

    #[test]
    fn display_shows_fraction() {
        let a = SymRational::new(sp(&["x"]), sp(&["y"]));
        assert!(a.to_string().contains('/'));
        assert!(!SymRational::from_expr(SymExpr::sym("k"))
            .to_string()
            .contains('/'));
    }
}
