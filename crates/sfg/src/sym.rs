//! Symbolic scalar expressions over named circuit parameters.
//!
//! Expressions are simplified structurally at construction time (constant
//! folding, identity elimination, flattening of nested sums/products) —
//! enough to keep Mason-generated transfer functions readable and cheap to
//! evaluate, without attempting full computer-algebra canonicalization.

use crate::{SfgError, SfgResult};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A symbolic scalar expression.
///
/// Build expressions with [`SymExpr::sym`], [`SymExpr::constant`] and the
/// arithmetic operators; evaluate with [`SymExpr::eval`].
///
/// # Example
/// ```
/// use adc_sfg::sym::SymExpr;
/// let gm = SymExpr::sym("gm");
/// let ro = SymExpr::sym("ro");
/// let gain = gm * ro;
/// let mut b = std::collections::HashMap::new();
/// b.insert("gm".to_string(), 1e-3);
/// b.insert("ro".to_string(), 100e3);
/// assert_eq!(gain.eval(&b).unwrap(), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SymExpr {
    /// Literal constant.
    Const(f64),
    /// Named parameter.
    Sym(String),
    /// Sum of terms.
    Sum(Vec<SymExpr>),
    /// Product of factors.
    Prod(Vec<SymExpr>),
    /// Multiplicative inverse.
    Inv(Box<SymExpr>),
    /// Additive inverse.
    Negate(Box<SymExpr>),
}

impl SymExpr {
    /// The constant 0.
    pub fn zero() -> Self {
        SymExpr::Const(0.0)
    }

    /// The constant 1.
    pub fn one() -> Self {
        SymExpr::Const(1.0)
    }

    /// A literal constant.
    pub fn constant(v: f64) -> Self {
        SymExpr::Const(v)
    }

    /// A named symbol.
    pub fn sym(name: &str) -> Self {
        SymExpr::Sym(name.to_string())
    }

    /// Structural test for the constant 0 (does not prove semantic zero for
    /// compound expressions).
    pub fn is_zero(&self) -> bool {
        matches!(self, SymExpr::Const(c) if *c == 0.0)
    }

    /// Structural test for the constant 1.
    pub fn is_one(&self) -> bool {
        matches!(self, SymExpr::Const(c) if *c == 1.0)
    }

    /// Simplifying sum.
    // Not an `impl Add`: this is an associated constructor taking both
    // operands by value, used heavily in hot symbolic loops.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: SymExpr, b: SymExpr) -> SymExpr {
        let mut terms = Vec::new();
        let mut konst = 0.0;
        let push = |e: SymExpr, terms: &mut Vec<SymExpr>, konst: &mut f64| match e {
            SymExpr::Const(c) => *konst += c,
            SymExpr::Sum(ts) => {
                for t in ts {
                    match t {
                        SymExpr::Const(c) => *konst += c,
                        other => terms.push(other),
                    }
                }
            }
            other => terms.push(other),
        };
        push(a, &mut terms, &mut konst);
        push(b, &mut terms, &mut konst);
        if konst != 0.0 || terms.is_empty() {
            terms.push(SymExpr::Const(konst));
        }
        if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            SymExpr::Sum(terms)
        }
    }

    /// Simplifying product.
    // See `add` above for why this is not an `impl Mul`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: SymExpr, b: SymExpr) -> SymExpr {
        if a.is_zero() || b.is_zero() {
            return SymExpr::zero();
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let mut factors = Vec::new();
        let mut konst = 1.0;
        let push = |e: SymExpr, factors: &mut Vec<SymExpr>, konst: &mut f64| match e {
            SymExpr::Const(c) => *konst *= c,
            SymExpr::Prod(fs) => {
                for f in fs {
                    match f {
                        SymExpr::Const(c) => *konst *= c,
                        other => factors.push(other),
                    }
                }
            }
            other => factors.push(other),
        };
        push(a, &mut factors, &mut konst);
        push(b, &mut factors, &mut konst);
        if konst == 0.0 {
            return SymExpr::zero();
        }
        if konst != 1.0 || factors.is_empty() {
            factors.insert(0, SymExpr::Const(konst));
        }
        if factors.len() == 1 {
            factors.pop().expect("nonempty")
        } else {
            SymExpr::Prod(factors)
        }
    }

    /// Simplifying negation.
    pub fn negate(e: SymExpr) -> SymExpr {
        match e {
            SymExpr::Const(c) => SymExpr::Const(-c),
            SymExpr::Negate(inner) => *inner,
            other => SymExpr::Negate(Box::new(other)),
        }
    }

    /// Simplifying reciprocal.
    ///
    /// # Panics
    /// Panics on the structural constant 0.
    pub fn inv(e: SymExpr) -> SymExpr {
        match e {
            SymExpr::Const(c) => {
                assert!(c != 0.0, "symbolic division by zero");
                SymExpr::Const(1.0 / c)
            }
            SymExpr::Inv(inner) => *inner,
            other => SymExpr::Inv(Box::new(other)),
        }
    }

    /// Evaluates with the given symbol bindings.
    ///
    /// # Errors
    /// [`SfgError::UnboundSymbol`] if a symbol is missing from `bindings`.
    pub fn eval(&self, bindings: &HashMap<String, f64>) -> SfgResult<f64> {
        match self {
            SymExpr::Const(c) => Ok(*c),
            SymExpr::Sym(name) => bindings
                .get(name)
                .copied()
                .ok_or_else(|| SfgError::UnboundSymbol(name.clone())),
            SymExpr::Sum(ts) => {
                let mut acc = 0.0;
                for t in ts {
                    acc += t.eval(bindings)?;
                }
                Ok(acc)
            }
            SymExpr::Prod(fs) => {
                let mut acc = 1.0;
                for f in fs {
                    acc *= f.eval(bindings)?;
                }
                Ok(acc)
            }
            SymExpr::Inv(e) => Ok(1.0 / e.eval(bindings)?),
            SymExpr::Negate(e) => Ok(-e.eval(bindings)?),
        }
    }

    /// Collects all symbol names into `out`.
    pub fn collect_symbols(&self, out: &mut BTreeSet<String>) {
        match self {
            SymExpr::Const(_) => {}
            SymExpr::Sym(name) => {
                out.insert(name.clone());
            }
            SymExpr::Sum(ts) | SymExpr::Prod(ts) => {
                for t in ts {
                    t.collect_symbols(out);
                }
            }
            SymExpr::Inv(e) | SymExpr::Negate(e) => e.collect_symbols(out),
        }
    }

    /// All symbols referenced by this expression.
    pub fn symbols(&self) -> BTreeSet<String> {
        let mut s = BTreeSet::new();
        self.collect_symbols(&mut s);
        s
    }

    /// Rough expression size (node count) — used to monitor symbolic swell.
    pub fn size(&self) -> usize {
        match self {
            SymExpr::Const(_) | SymExpr::Sym(_) => 1,
            SymExpr::Sum(ts) | SymExpr::Prod(ts) => 1 + ts.iter().map(SymExpr::size).sum::<usize>(),
            SymExpr::Inv(e) | SymExpr::Negate(e) => 1 + e.size(),
        }
    }
}

impl Default for SymExpr {
    fn default() -> Self {
        SymExpr::zero()
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Const(c) => write!(f, "{c}"),
            SymExpr::Sym(name) => write!(f, "{name}"),
            SymExpr::Sum(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            SymExpr::Prod(fs) => {
                for (i, t) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            SymExpr::Inv(e) => write!(f, "1/({e})"),
            SymExpr::Negate(e) => write!(f, "-({e})"),
        }
    }
}

impl Add for SymExpr {
    type Output = SymExpr;
    fn add(self, rhs: SymExpr) -> SymExpr {
        SymExpr::add(self, rhs)
    }
}

impl Sub for SymExpr {
    type Output = SymExpr;
    fn sub(self, rhs: SymExpr) -> SymExpr {
        SymExpr::add(self, SymExpr::negate(rhs))
    }
}

impl Mul for SymExpr {
    type Output = SymExpr;
    fn mul(self, rhs: SymExpr) -> SymExpr {
        SymExpr::mul(self, rhs)
    }
}

impl Neg for SymExpr {
    type Output = SymExpr;
    fn neg(self) -> SymExpr {
        SymExpr::negate(self)
    }
}

impl From<f64> for SymExpr {
    fn from(v: f64) -> Self {
        SymExpr::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn constant_folding() {
        let e = SymExpr::constant(2.0) + SymExpr::constant(3.0);
        assert_eq!(e, SymExpr::Const(5.0));
        let e = SymExpr::constant(2.0) * SymExpr::constant(3.0);
        assert_eq!(e, SymExpr::Const(6.0));
    }

    #[test]
    fn identities() {
        let x = SymExpr::sym("x");
        assert_eq!(x.clone() + SymExpr::zero(), x);
        assert_eq!(x.clone() * SymExpr::one(), x);
        assert_eq!(x.clone() * SymExpr::zero(), SymExpr::zero());
        assert_eq!(-(-x.clone()), x);
        assert_eq!(SymExpr::inv(SymExpr::inv(x.clone())), x);
    }

    #[test]
    fn flattening_keeps_eval_correct() {
        let a = SymExpr::sym("a");
        let b = SymExpr::sym("b");
        let c = SymExpr::sym("c");
        let e = (a + b) + (c + SymExpr::constant(1.0));
        let v = e
            .eval(&bind(&[("a", 1.0), ("b", 2.0), ("c", 3.0)]))
            .unwrap();
        assert_eq!(v, 7.0);
        // flattened: one Sum level
        if let SymExpr::Sum(ts) = &e {
            assert!(ts.iter().all(|t| !matches!(t, SymExpr::Sum(_))));
        } else {
            panic!("expected Sum, got {e:?}");
        }
    }

    #[test]
    fn unbound_symbol_error() {
        let e = SymExpr::sym("gm") * SymExpr::sym("ro");
        match e.eval(&bind(&[("gm", 1.0)])) {
            Err(SfgError::UnboundSymbol(s)) => assert_eq!(s, "ro"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symbols_collected_sorted() {
        let e = SymExpr::sym("z") + SymExpr::sym("a") * SymExpr::inv(SymExpr::sym("m"));
        let syms: Vec<String> = e.symbols().into_iter().collect();
        assert_eq!(syms, vec!["a", "m", "z"]);
    }

    #[test]
    fn display_round_trippable_structure() {
        let e = (SymExpr::sym("gm") - SymExpr::sym("gds")) * SymExpr::inv(SymExpr::sym("c"));
        let s = e.to_string();
        assert!(s.contains("gm") && s.contains("gds") && s.contains("c"));
    }

    #[test]
    fn division_by_const_zero_panics() {
        let r = std::panic::catch_unwind(|| SymExpr::inv(SymExpr::constant(0.0)));
        assert!(r.is_err());
    }

    #[test]
    fn size_measures_growth() {
        let x = SymExpr::sym("x");
        let big = (x.clone() + SymExpr::sym("y")) * (x.clone() + SymExpr::sym("z"));
        assert!(big.size() > x.size());
    }
}
