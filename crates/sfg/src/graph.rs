//! Signal-flow graphs: nodes, weighted directed edges, and the forward-path
//! and loop enumeration Mason's rule needs.
//!
//! Node sets are stored as `u64` bitmasks (graphs from DPI construction of
//! OTA-scale circuits have ≤ ~20 nodes), which makes the non-touching-loop
//! tests in Mason's formula O(1).

use crate::rational::SymRational;
use std::collections::HashMap;
use std::fmt;

/// Node handle within an [`Sfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SfgNode(pub(crate) usize);

impl SfgNode {
    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A directed edge with a symbolic rational gain.
#[derive(Debug, Clone)]
pub struct SfgEdge {
    /// Source node.
    pub from: SfgNode,
    /// Destination node.
    pub to: SfgNode,
    /// Branch gain.
    pub gain: SymRational,
}

/// A forward path or loop: the visited node set (bitmask) and the product of
/// branch gains along it.
#[derive(Debug, Clone)]
pub struct PathGain {
    /// Bitmask of visited nodes.
    pub mask: u64,
    /// Product of edge gains.
    pub gain: SymRational,
    /// Node sequence (for diagnostics; loops start at their smallest node).
    pub nodes: Vec<SfgNode>,
}

impl PathGain {
    /// True if this path/loop shares no node with `other`.
    pub fn non_touching(&self, other: &PathGain) -> bool {
        self.mask & other.mask == 0
    }
}

/// A signal-flow graph.
#[derive(Debug, Clone, Default)]
pub struct Sfg {
    names: Vec<String>,
    name_map: HashMap<String, usize>,
    edges: Vec<SfgEdge>,
}

impl Sfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Sfg::default()
    }

    /// Interns (or retrieves) a named node.
    ///
    /// # Panics
    /// Panics when more than 64 nodes are created (bitmask limit).
    pub fn node(&mut self, name: &str) -> SfgNode {
        if let Some(&i) = self.name_map.get(name) {
            return SfgNode(i);
        }
        let i = self.names.len();
        assert!(i < 64, "SFG limited to 64 nodes");
        self.names.push(name.to_string());
        self.name_map.insert(name.to_string(), i);
        SfgNode(i)
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Node name.
    pub fn node_name(&self, n: SfgNode) -> &str {
        &self.names[n.0]
    }

    /// Looks up a node by name.
    pub fn find_node(&self, name: &str) -> Option<SfgNode> {
        self.name_map.get(name).map(|&i| SfgNode(i))
    }

    /// Adds a directed edge; parallel edges between the same pair are
    /// merged by gain addition (standard SFG identity).
    pub fn add_edge(&mut self, from: SfgNode, to: SfgNode, gain: SymRational) {
        if gain.is_zero() {
            return;
        }
        if let Some(e) = self.edges.iter_mut().find(|e| e.from == from && e.to == to) {
            e.gain = &e.gain + &gain;
            return;
        }
        self.edges.push(SfgEdge { from, to, gain });
    }

    /// All edges.
    pub fn edges(&self) -> &[SfgEdge] {
        &self.edges
    }

    /// Outgoing edges of a node.
    fn out_edges(&self, n: SfgNode) -> impl Iterator<Item = &SfgEdge> {
        self.edges.iter().filter(move |e| e.from == n)
    }

    /// Enumerates all simple forward paths from `src` to `dst`.
    pub fn simple_paths(&self, src: SfgNode, dst: SfgNode) -> Vec<PathGain> {
        let mut out = Vec::new();
        let mut stack = vec![src];
        let mut visited = 1u64 << src.0;
        self.dfs_paths(
            src,
            dst,
            &mut stack,
            &mut visited,
            &SymRational::one(),
            &mut out,
        );
        out
    }

    fn dfs_paths(
        &self,
        cur: SfgNode,
        dst: SfgNode,
        stack: &mut Vec<SfgNode>,
        visited: &mut u64,
        gain: &SymRational,
        out: &mut Vec<PathGain>,
    ) {
        if cur == dst {
            out.push(PathGain {
                mask: *visited,
                gain: gain.clone(),
                nodes: stack.clone(),
            });
            return;
        }
        let next_edges: Vec<&SfgEdge> = self.out_edges(cur).collect();
        for e in next_edges {
            let bit = 1u64 << e.to.0;
            if *visited & bit != 0 {
                continue;
            }
            *visited |= bit;
            stack.push(e.to);
            let g = gain * &e.gain;
            self.dfs_paths(e.to, dst, stack, visited, &g, out);
            stack.pop();
            *visited &= !bit;
        }
    }

    /// Enumerates all simple loops (cycles), each reported once with its
    /// smallest node first.
    pub fn loops(&self) -> Vec<PathGain> {
        let mut out = Vec::new();
        for start in 0..self.names.len() {
            let s = SfgNode(start);
            let mut stack = vec![s];
            let mut visited = 1u64 << start;
            self.dfs_loops(
                s,
                s,
                start,
                &mut stack,
                &mut visited,
                &SymRational::one(),
                &mut out,
            );
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_loops(
        &self,
        cur: SfgNode,
        start: SfgNode,
        min_idx: usize,
        stack: &mut Vec<SfgNode>,
        visited: &mut u64,
        gain: &SymRational,
        out: &mut Vec<PathGain>,
    ) {
        let next_edges: Vec<&SfgEdge> = self.out_edges(cur).collect();
        for e in next_edges {
            if e.to == start {
                // Found a loop; record (canonical: only counted from its
                // smallest node, guaranteed by the min_idx pruning below).
                let g = gain * &e.gain;
                out.push(PathGain {
                    mask: *visited,
                    gain: g,
                    nodes: stack.clone(),
                });
                continue;
            }
            // Only visit nodes with index > min_idx so each cycle is
            // enumerated exactly once (rooted at its smallest node).
            if e.to.0 <= min_idx {
                continue;
            }
            let bit = 1u64 << e.to.0;
            if *visited & bit != 0 {
                continue;
            }
            *visited |= bit;
            stack.push(e.to);
            let g = gain * &e.gain;
            self.dfs_loops(e.to, start, min_idx, stack, visited, &g, out);
            stack.pop();
            *visited &= !bit;
        }
    }
}

impl fmt::Display for Sfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SFG with {} nodes, {} edges:",
            self.names.len(),
            self.edges.len()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -> {} : {}",
                self.names[e.from.0], self.names[e.to.0], e.gain
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::SymExpr;

    fn k(name: &str) -> SymRational {
        SymRational::from_expr(SymExpr::sym(name))
    }

    #[test]
    fn node_interning_and_limit() {
        let mut g = Sfg::new();
        let a = g.node("a");
        assert_eq!(g.node("a"), a);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.node_name(a), "a");
        assert_eq!(g.find_node("a"), Some(a));
        assert_eq!(g.find_node("zz"), None);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = Sfg::new();
        let a = g.node("a");
        let b = g.node("b");
        g.add_edge(a, b, k("x"));
        g.add_edge(a, b, k("y"));
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn simple_paths_in_diamond() {
        let mut g = Sfg::new();
        let s = g.node("s");
        let m1 = g.node("m1");
        let m2 = g.node("m2");
        let t = g.node("t");
        g.add_edge(s, m1, k("a"));
        g.add_edge(s, m2, k("b"));
        g.add_edge(m1, t, k("c"));
        g.add_edge(m2, t, k("d"));
        let paths = g.simple_paths(s, t);
        assert_eq!(paths.len(), 2);
        // Gains are a·c and b·d (order independent).
        let strs: Vec<String> = paths.iter().map(|p| p.gain.to_string()).collect();
        assert!(strs.iter().any(|s| s.contains('a') && s.contains('c')));
        assert!(strs.iter().any(|s| s.contains('b') && s.contains('d')));
    }

    #[test]
    fn loops_counted_once() {
        let mut g = Sfg::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        // Two-node loop a<->b, three-node loop a->b->c->a, self-loop on c.
        g.add_edge(a, b, k("p"));
        g.add_edge(b, a, k("q"));
        g.add_edge(b, c, k("r"));
        g.add_edge(c, a, k("s"));
        g.add_edge(c, c, k("t"));
        let loops = g.loops();
        assert_eq!(loops.len(), 3, "{loops:?}");
    }

    #[test]
    fn non_touching_detection() {
        let mut g = Sfg::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        let d = g.node("d");
        g.add_edge(a, b, k("x"));
        g.add_edge(b, a, k("y"));
        g.add_edge(c, d, k("u"));
        g.add_edge(d, c, k("v"));
        let loops = g.loops();
        assert_eq!(loops.len(), 2);
        assert!(loops[0].non_touching(&loops[1]));
    }

    #[test]
    fn no_paths_when_disconnected() {
        let mut g = Sfg::new();
        let a = g.node("a");
        let b = g.node("b");
        assert!(g.simple_paths(a, b).is_empty());
        assert!(g.loops().is_empty());
    }
}
