//! Mason's gain formula on symbolic signal-flow graphs.
//!
//! `H = Σₖ Pₖ·Δₖ / Δ` where `Δ = 1 − ΣLᵢ + ΣLᵢLⱼ − …` over pairwise
//! non-touching loop sets, and `Δₖ` is the same sum restricted to loops not
//! touching forward path `k`. The paper derives each MDAC/OTA symbolic
//! transfer function exactly this way (§3).

use crate::graph::{PathGain, Sfg, SfgNode};
use crate::rational::SymRational;
use crate::{SfgError, SfgResult};

/// Computes the graph determinant `Δ` restricted to loops whose node masks
/// do not intersect `forbidden`.
///
/// Implemented as the recursive expansion
/// `f(i, used) = f(i+1, used) − Lᵢ·f(i+1, used ∪ mask(Lᵢ))` over pairwise
/// disjoint loop subsets, which enumerates every non-touching combination
/// exactly once with the correct alternating sign.
pub fn determinant(loops: &[PathGain], forbidden: u64) -> SymRational {
    fn rec(loops: &[PathGain], i: usize, used: u64) -> SymRational {
        if i == loops.len() {
            return SymRational::one();
        }
        // Skip loop i.
        let mut acc = rec(loops, i + 1, used);
        // Include loop i if it touches nothing already used.
        if loops[i].mask & used == 0 {
            let with = rec(loops, i + 1, used | loops[i].mask);
            acc = &acc - &(&loops[i].gain * &with);
        }
        acc
    }
    rec(loops, 0, forbidden)
}

/// Computes the symbolic transfer function from `src` to `dst` via Mason's
/// gain formula.
///
/// # Errors
/// [`SfgError::NoForwardPath`] if `dst` is unreachable from `src`.
pub fn mason_transfer(sfg: &Sfg, src: SfgNode, dst: SfgNode) -> SfgResult<SymRational> {
    if src == dst {
        return Ok(SymRational::one());
    }
    let paths = sfg.simple_paths(src, dst);
    if paths.is_empty() {
        return Err(SfgError::NoForwardPath {
            from: sfg.node_name(src).to_string(),
            to: sfg.node_name(dst).to_string(),
        });
    }
    let loops = sfg.loops();
    let delta = determinant(&loops, 0);
    let mut numerator = SymRational::zero();
    for p in &paths {
        let delta_k = determinant(&loops, p.mask);
        numerator = &numerator + &(&p.gain * &delta_k);
    }
    Ok(&numerator * &delta.inv())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::SymExpr;
    use crate::sympoly::SymPoly;
    use std::collections::HashMap;

    fn k(name: &str) -> SymRational {
        SymRational::from_expr(SymExpr::sym(name))
    }

    fn kc(v: f64) -> SymRational {
        SymRational::from_expr(SymExpr::constant(v))
    }

    fn bind(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn cascade_multiplies() {
        let mut g = Sfg::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.add_edge(a, b, kc(3.0));
        g.add_edge(b, c, kc(4.0));
        let h = mason_transfer(&g, a, c).unwrap();
        let tf = h.eval(&HashMap::new()).unwrap();
        assert!((tf.dc_gain() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn feedback_loop_classic() {
        // x → y with forward A and self-loop −A·β on y:
        // H = A/(1 + A·β)
        let mut g = Sfg::new();
        let x = g.node("x");
        let y = g.node("y");
        g.add_edge(x, y, k("A"));
        let loop_gain = &-&k("A") * &k("beta");
        g.add_edge(y, y, loop_gain);
        let h = mason_transfer(&g, x, y).unwrap();
        let tf = h.eval(&bind(&[("A", 1000.0), ("beta", 0.1)])).unwrap();
        let want = 1000.0 / (1.0 + 100.0);
        assert!((tf.dc_gain() - want).abs() < 1e-9);
    }

    #[test]
    fn two_parallel_paths_add() {
        let mut g = Sfg::new();
        let s = g.node("s");
        let m1 = g.node("m1");
        let m2 = g.node("m2");
        let t = g.node("t");
        g.add_edge(s, m1, kc(2.0));
        g.add_edge(m1, t, kc(3.0));
        g.add_edge(s, m2, kc(5.0));
        g.add_edge(m2, t, kc(7.0));
        let h = mason_transfer(&g, s, t).unwrap();
        let tf = h.eval(&HashMap::new()).unwrap();
        assert!((tf.dc_gain() - 41.0).abs() < 1e-12);
    }

    /// Textbook Mason example: two touching loops and one forward path.
    #[test]
    fn touching_loops_no_product_term() {
        // s → a → b → t ; loops: a→a (L1), b→b (L2): non-touching.
        // Δ = 1 − L1 − L2 + L1·L2 ; P = g1·g2·g3, Δ1 = 1.
        let mut g = Sfg::new();
        let s = g.node("s");
        let a = g.node("a");
        let b = g.node("b");
        let t = g.node("t");
        g.add_edge(s, a, kc(1.0));
        g.add_edge(a, b, kc(1.0));
        g.add_edge(b, t, kc(1.0));
        g.add_edge(a, a, kc(0.5));
        g.add_edge(b, b, kc(0.25));
        let h = mason_transfer(&g, s, t).unwrap();
        let tf = h.eval(&HashMap::new()).unwrap();
        let delta = 1.0 - 0.5 - 0.25 + 0.5 * 0.25;
        assert!((tf.dc_gain() - 1.0 / delta).abs() < 1e-12);
    }

    /// Loops that share a node must NOT produce an L1·L2 product term.
    #[test]
    fn touching_loops_share_node() {
        // a→b→a (L1 = p·q), b→c→b (L2 = r·u): share node b → Δ = 1−L1−L2.
        let mut g = Sfg::new();
        let s = g.node("s");
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        let t = g.node("t");
        g.add_edge(s, a, kc(1.0));
        g.add_edge(a, b, kc(2.0)); // also part of L1
        g.add_edge(b, a, kc(0.1)); // L1 = 0.2
        g.add_edge(b, c, kc(3.0)); // part of L2
        g.add_edge(c, b, kc(0.05)); // L2 = 0.15
        g.add_edge(c, t, kc(1.0));
        let h = mason_transfer(&g, s, t).unwrap();
        let tf = h.eval(&HashMap::new()).unwrap();
        // P = 1·2·3·1 = 6, Δ = 1 − 0.2 − 0.15 (touching), Δ1 = 1
        let want = 6.0 / (1.0 - 0.2 - 0.15);
        assert!(
            (tf.dc_gain() - want).abs() < 1e-9,
            "{} vs {}",
            tf.dc_gain(),
            want
        );
    }

    #[test]
    fn path_delta_excludes_touching_loops() {
        // Forward path s→a→t, plus an isolated loop b→b that does not touch
        // the path: Δ = 1 − L, Δ1 = 1 − L → H = P exactly.
        let mut g = Sfg::new();
        let s = g.node("s");
        let a = g.node("a");
        let t = g.node("t");
        let b = g.node("b");
        g.add_edge(s, a, kc(4.0));
        g.add_edge(a, t, kc(0.5));
        g.add_edge(b, b, kc(0.9));
        let h = mason_transfer(&g, s, t).unwrap();
        let tf = h.eval(&HashMap::new()).unwrap();
        assert!((tf.dc_gain() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rc_integrator_frequency_response() {
        // V_in →(g/(g+sC))→ V_out modeled as edge with rational gain.
        let mut g = Sfg::new();
        let vin = g.node("vin");
        let vout = g.node("vout");
        let num = SymPoly::constant(SymExpr::sym("g"));
        let den = SymPoly::new(vec![SymExpr::sym("g"), SymExpr::sym("c")]);
        g.add_edge(vin, vout, SymRational::new(num, den));
        let h = mason_transfer(&g, vin, vout).unwrap();
        let tf = h.eval(&bind(&[("g", 1e-3), ("c", 1e-9)])).unwrap();
        let fpole = 1e-3 / (2.0 * std::f64::consts::PI * 1e-9);
        let m = tf.magnitude(fpole);
        assert!((m - 1.0 / 2.0_f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn unreachable_target_errors() {
        let mut g = Sfg::new();
        let a = g.node("a");
        let b = g.node("b");
        assert!(matches!(
            mason_transfer(&g, a, b),
            Err(SfgError::NoForwardPath { .. })
        ));
    }

    #[test]
    fn src_equals_dst_is_unity() {
        let mut g = Sfg::new();
        let a = g.node("a");
        let h = mason_transfer(&g, a, a).unwrap();
        assert!(h.is_one());
    }

    #[test]
    fn determinant_of_no_loops_is_one() {
        let d = determinant(&[], 0);
        assert!(d.is_one());
    }
}
