//! Ablation of the paper's §3 design decision: hybrid equation+simulation
//! evaluation vs simulation-only characterization.
//!
//! The "equation" path formulates the numeric transfer function once and
//! reads gain/unity-frequency/phase-margin analytically; the
//! "simulation" path must sweep enough AC points to locate the unity
//! crossing by search. Both sit on top of the same DC solve.

use adc_mdac::opamp::{build_telescopic, TelescopicParams};
use adc_numerics::interp::logspace;
use adc_sfg::nettf::{extract_tf, NetTfOptions};
use adc_spice::ac::ac_sweep;
use adc_spice::dc::{dc_operating_point, DcOptions};
use adc_spice::process::Process;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let proc = Process::c025();
    let tb = build_telescopic(&proc, &TelescopicParams::nominal(), 1e-12);
    let op = dc_operating_point(&tb.circuit, &DcOptions::default()).unwrap();

    // Verify both paths agree on A0 before timing them.
    let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
        .unwrap()
        .cancel_common_roots(1e-5);
    let a0_eq = tf.magnitude(1e4);
    let sweep = ac_sweep(&tb.circuit, &op, &[1e4]).unwrap();
    let a0_sim = sweep.voltage(tb.output, 0).norm();
    assert!(
        (a0_eq - a0_sim).abs() < 0.01 * a0_sim,
        "paths disagree: {a0_eq} vs {a0_sim}"
    );
    println!("\nA0 agreement: equation {a0_eq:.1} vs simulation {a0_sim:.1}");

    let mut g = c.benchmark_group("ablation_evaluation_paths");
    g.bench_function("equation_nettf_full_characterization", |b| {
        b.iter(|| {
            let tf = extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default())
                .unwrap()
                .cancel_common_roots(1e-5);
            let a0 = tf.magnitude(1e4);
            let fu = tf.unity_gain_freq(1e4, 50e9);
            black_box((a0, fu))
        })
    });
    g.bench_function("simulation_ac_sweep_61pt_characterization", |b| {
        let freqs = logspace(1e4, 50e9, 61);
        b.iter(|| {
            let sweep = ac_sweep(&tb.circuit, &op, &freqs).unwrap();
            let mags = sweep.magnitude_db(tb.output);
            // locate unity crossing by scan (what a simulator flow does)
            let fu = freqs
                .iter()
                .zip(&mags)
                .find(|(_, &m)| m <= 0.0)
                .map(|(f, _)| *f);
            black_box((mags[0], fu))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
