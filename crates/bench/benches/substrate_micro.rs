//! Micro-benchmarks of the substrates the flow leans on: the DC Newton
//! solve, the DPI/SFG + Mason symbolic analysis, numeric TF extraction and
//! the FFT-based converter metrics.

use adc_behav::metrics::sine_test;
use adc_behav::pipeline::PipelineAdc;
use adc_mdac::opamp::{build_telescopic, TelescopicParams};
use adc_sfg::dpi::DpiSfg;
use adc_sfg::nettf::{extract_tf, NetTfOptions};
use adc_spice::dc::{dc_operating_point, DcOptions};
use adc_spice::process::Process;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let proc = Process::c025();
    let tb = build_telescopic(&proc, &TelescopicParams::nominal(), 1e-12);
    let op = dc_operating_point(&tb.circuit, &DcOptions::default()).unwrap();

    c.bench_function("dc_newton_telescopic_ota", |b| {
        b.iter(|| black_box(dc_operating_point(&tb.circuit, &DcOptions::default()).unwrap()))
    });
    c.bench_function("nettf_extraction_telescopic", |b| {
        b.iter(|| {
            black_box(extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default()).unwrap())
        })
    });

    // DPI/Mason on a common-source stage (symbolic path).
    let mut cs = adc_spice::Circuit::new();
    let vdd = cs.node("vdd");
    let g = cs.node("g");
    let d = cs.node("d");
    cs.add_vsource("VDD", vdd, adc_spice::Circuit::GROUND, 3.3);
    cs.add_vsource_wave("VG", g, adc_spice::Circuit::GROUND, 0.8.into(), 1.0);
    cs.add_resistor("RD", vdd, d, 10e3);
    cs.add_capacitor("CL", d, adc_spice::Circuit::GROUND, 1e-12);
    cs.add_mosfet(
        "M1",
        d,
        g,
        adc_spice::Circuit::GROUND,
        adc_spice::Circuit::GROUND,
        proc.nmos,
        5e-6,
        0.5e-6,
    );
    let op_cs = dc_operating_point(&cs, &DcOptions::default()).unwrap();
    c.bench_function("dpi_mason_symbolic_common_source", |b| {
        b.iter(|| {
            let dpi = DpiSfg::build(&cs, &op_cs, g).unwrap();
            black_box(dpi.tf(d).unwrap())
        })
    });

    let adc = PipelineAdc::ideal(&[4, 3, 2], 7);
    let mut grp = c.benchmark_group("behavioural");
    grp.sample_size(20);
    grp.bench_function("sine_test_4096pt_13bit", |b| {
        b.iter(|| black_box(sine_test(&adc, 4096, 0.95, 1)))
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
