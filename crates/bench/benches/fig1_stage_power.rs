//! Criterion bench around the Fig. 1 computation (full 13-bit candidate
//! evaluation with the calibrated designer model), printing the figure data
//! once at startup.

use adc_bench::report_for;
use adc_topopt::report::fig1_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = report_for(13);
    println!("\n{}", fig1_table(&report));
    assert_eq!(report.best().candidate.to_string(), "4-3-2");
    c.bench_function("fig1_13bit_candidate_evaluation", |b| {
        b.iter(|| black_box(report_for(black_box(13))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
