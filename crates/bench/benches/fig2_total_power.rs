//! Criterion bench around the Fig. 2 computation (all four resolutions),
//! printing the figure data once at startup.

use adc_bench::all_reports;
use adc_topopt::report::fig2_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let reports = all_reports();
    println!("\n{}", fig2_table(&reports));
    let optima: Vec<String> = reports
        .iter()
        .map(|r| r.best().candidate.to_string())
        .collect();
    assert_eq!(optima, vec!["3-2", "4-2", "4-2-2", "4-3-2"]);
    c.bench_function("fig2_total_power_10_to_13_bits", |b| {
        b.iter(|| black_box(all_reports()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
