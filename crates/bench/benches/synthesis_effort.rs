//! Criterion bench for the §4 effort claim: cold circuit synthesis vs
//! warm-started retargeting of an MDAC opamp (small budgets — each
//! iteration runs DC Newton + TF extraction per candidate).

use adc_mdac::power::{design_chain, PowerModelParams};
use adc_mdac::specs::AdcSpec;
use adc_synth::SynthConfig;
use adc_topopt::flow::{ota_requirements, synthesize_ota, OtaRequirements};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let chain = design_chain(&spec, &[4, 3, 2], &params);
    let req = ota_requirements(&chain[2], &spec);
    let cfg = SynthConfig {
        iterations: 120,
        nm_iterations: 30,
        seed: 5,
        ..Default::default()
    };
    let cold = synthesize_ota(&spec.process, &req, &cfg, None);
    println!(
        "\ncold synthesis: {} evaluations (feasible = {})",
        cold.evaluations, cold.feasible
    );
    let relaxed = OtaRequirements {
        a0_min: req.a0_min * 0.8,
        ..req.clone()
    };

    let mut g = c.benchmark_group("synthesis_effort");
    g.sample_size(10);
    g.bench_function("cold_synthesis_120_iter", |b| {
        b.iter(|| black_box(synthesize_ota(&spec.process, &req, &cfg, None)))
    });
    g.bench_function("warm_retarget_of_same_block", |b| {
        b.iter(|| black_box(synthesize_ota(&spec.process, &relaxed, &cfg, Some(&cold))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
