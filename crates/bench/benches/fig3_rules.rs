//! Criterion bench around the Fig. 3 rule derivation (8–14-bit sweep),
//! printing the rule table once at startup.

use adc_mdac::power::PowerModelParams;
use adc_topopt::report::fig3_table;
use adc_topopt::rules::derive_rules;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let params = PowerModelParams::calibrated();
    let rules = derive_rules(8..=14, &params);
    println!("\n{}", fig3_table(&rules));
    assert_eq!(rules.band_for_max_bits(3), Some((9, 10)));
    c.bench_function("fig3_rule_derivation_8_to_14_bits", |b| {
        b.iter(|| black_box(derive_rules(black_box(8..=14), &params)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
