//! Micro-benchmarks of the zero-allocation evaluation fast path: fresh
//! allocating entry points vs. reusable workspaces at every layer (DC
//! solve, numeric TF extraction, full hybrid evaluation, netlist
//! materialization).

use adc_mdac::opamp::{build_telescopic, TelescopicHandles, TelescopicParams};
use adc_sfg::nettf::{extract_tf, extract_tf_with, NetTfOptions, NetTfWorkspace};
use adc_spice::dc::{dc_operating_point, dc_operating_point_with, DcOptions, DcWorkspace};
use adc_spice::netlist::Circuit;
use adc_spice::process::Process;
use adc_synth::evaluator::Evaluator;
use adc_synth::hybrid::{BenchSetup, BenchTuner, HybridOptions, HybridOtaEvaluator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

fn telescopic_bench(proc: &Process) -> impl Fn(&[f64]) -> BenchSetup + '_ {
    move |x: &[f64]| {
        let tb = build_telescopic(proc, &TelescopicParams::from_vec(x), 1e-12);
        let handles = TelescopicHandles::resolve(&tb.circuit).expect("telescopic handles");
        let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
            handles.retune(ckt, &TelescopicParams::from_vec(x));
        });
        BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
    }
}

fn bench(c: &mut Criterion) {
    let proc = Process::c025();
    let nominal = TelescopicParams::nominal().to_vec();
    let tb = build_telescopic(&proc, &TelescopicParams::nominal(), 1e-12);
    let opts = DcOptions::default();
    let op = dc_operating_point(&tb.circuit, &opts).unwrap();

    // DC solve: allocating wrapper vs. persistent workspace.
    c.bench_function("dc_solve_fresh", |b| {
        b.iter(|| black_box(dc_operating_point(&tb.circuit, &opts).unwrap()))
    });
    let mut dc_ws = DcWorkspace::new(&tb.circuit).unwrap();
    c.bench_function("dc_solve_workspace", |b| {
        b.iter(|| black_box(dc_operating_point_with(&mut dc_ws, &tb.circuit, &opts).unwrap()))
    });

    // Numeric TF extraction: allocating vs. reusable workspace.
    c.bench_function("nettf_fresh", |b| {
        b.iter(|| {
            black_box(extract_tf(&tb.circuit, &op, tb.output, &NetTfOptions::default()).unwrap())
        })
    });
    let mut tf_ws = NetTfWorkspace::new();
    c.bench_function("nettf_workspace", |b| {
        b.iter(|| {
            black_box(
                extract_tf_with(
                    &mut tf_ws,
                    &tb.circuit,
                    &op,
                    tb.output,
                    &NetTfOptions::default(),
                )
                .unwrap(),
            )
        })
    });

    // Testbench materialization: rebuild vs. in-place retune.
    c.bench_function("bench_rebuild", |b| {
        let build = telescopic_bench(&proc);
        b.iter(|| black_box(build(&nominal)))
    });
    c.bench_function("bench_retune", |b| {
        let build = telescopic_bench(&proc);
        let mut bench = build(&nominal);
        b.iter(|| {
            bench.retune(black_box(&nominal));
        })
    });

    // Full hybrid evaluation: cold (fresh everything per candidate) vs.
    // steady-state fast path (persistent testbench + workspaces + local-
    // phase warm-started DC).
    c.bench_function("hybrid_eval_cold", |b| {
        b.iter(|| {
            let ev = HybridOtaEvaluator::new(telescopic_bench(&proc), HybridOptions::default());
            black_box(ev.evaluate(&nominal))
        })
    });
    let ev = HybridOtaEvaluator::new(telescopic_bench(&proc), HybridOptions::default());
    ev.set_local_phase(true);
    c.bench_function("hybrid_eval_fastpath", |b| {
        b.iter(|| black_box(ev.evaluate(&nominal)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
