//! # adc-bench
//!
//! Benchmark harness regenerating **every table and figure** of the paper's
//! evaluation:
//!
//! | artifact | binary | criterion bench |
//! |----------|--------|-----------------|
//! | Fig. 1 — stage power, 13-bit candidates | `fig1` | `fig1_stage_power` |
//! | Fig. 2 — total power, 10–13 bits | `fig2` | `fig2_total_power` |
//! | Fig. 3 — optimum-enumeration rules | `fig3` | `fig3_rules` |
//! | §4 effort claim (setup vs retarget) | `effort` | `synthesis_effort` |
//! | evaluator throughput (`BENCH_EVAL.json`) | `bench_eval` | `eval_fastpath` |
//!
//! plus `substrate_micro` measuring the building blocks (DC Newton solve,
//! Mason's rule, TF extraction, FFT metrics) and `eval_fastpath` comparing
//! the allocating entry points against the reusable-workspace fast path.
//!
//! Binaries print the same rows/series the paper reports; see
//! `EXPERIMENTS.md` for the paper-vs-measured record and the
//! `BENCH_EVAL.json` throughput trajectory.

use adc_mdac::power::PowerModelParams;
use adc_mdac::specs::AdcSpec;
use adc_topopt::optimize::{optimize_topology, TopologyReport};

/// The paper's evaluated resolutions.
pub const RESOLUTIONS: [u32; 4] = [10, 11, 12, 13];

/// Runs the topology optimization for one resolution with the calibrated
/// designer model.
pub fn report_for(resolution: u32) -> TopologyReport {
    optimize_topology(
        &AdcSpec::date05(resolution),
        &PowerModelParams::calibrated(),
    )
}

/// Reports for all four paper resolutions.
pub fn all_reports() -> Vec<TopologyReport> {
    RESOLUTIONS.iter().map(|&k| report_for(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_cover_all_resolutions() {
        let rs = all_reports();
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[3].best().candidate.to_string(), "4-3-2");
    }
}
