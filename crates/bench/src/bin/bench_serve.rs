//! Serving-layer load benchmark: boots an in-process [`FlowServer`] on an
//! ephemeral port, warms its resident cache once per resolution, then
//! drives it from concurrent **keep-alive** TCP clients (one persistent
//! [`http::Client`] each — submit, every poll, and the fetch ride the
//! same connection) and emits `BENCH_SERVE.json` with three gate-able
//! rows:
//!
//! * `serve_throughput` — completed flow runs per second across all
//!   clients (higher is better, gated one-sided like the other
//!   throughput rows);
//! * `serve_p50_ms` / `serve_p99_ms` — median and 99th-percentile
//!   end-to-end latency of one run (submit → poll to `Completed` → fetch
//!   payload) in milliseconds. Lower is better: `bench_check` lists both
//!   in `INVERTED_METRICS` and fails when they *grow* past the gate.
//!
//! The warm-up phase means the measured runs are pure cache replays —
//! the benchmark isolates the serving overhead (HTTP framing, session
//! bookkeeping, ranking and payload rendering) from synthesis cost,
//! which `bench_eval` already tracks. The per-client connection-reuse
//! rate is printed so a keep-alive regression (reuse collapsing to ~0)
//! is visible at a glance even when throughput hides it.
//!
//! Run with `cargo run --release -p adc-bench --bin bench_serve`.

use adc_mdac::specs::AdcSpec;
use adc_serve::http;
use adc_serve::protocol::SubmitRequest;
use adc_serve::{FlowServer, ServerConfig};
use adc_synth::SynthConfig;
use adc_topopt::flow::FlowOptions;
use adc_topopt::wire::JsonValue;
use std::time::{Duration, Instant};

/// Concurrent client threads.
const CLIENTS: usize = 4;
/// Timed runs each client drives sequentially. Sized so the pooled
/// sample (CLIENTS × RUNS_PER_CLIENT) makes the p99 a real percentile
/// rather than the single worst outlier.
const RUNS_PER_CLIENT: usize = 32;
/// Resolutions the clients round-robin over (both warmed beforehand).
const RESOLUTIONS: [u32; 2] = [10, 11];

fn request_for(resolution: u32) -> SubmitRequest {
    SubmitRequest {
        spec: AdcSpec::date05(resolution),
        cfg: SynthConfig {
            iterations: 8,
            nm_iterations: 2,
            seed: 13,
            ..Default::default()
        },
        options: FlowOptions::default(),
    }
}

/// Drives one run end to end on the client's persistent connection and
/// returns its wall-clock latency.
fn drive_run(client: &mut http::Client, body: &str) -> Duration {
    let t0 = Instant::now();
    let (status, reply) = client
        .request("POST", "/v1/runs", Some(body))
        .expect("submit");
    assert_eq!(status, 202, "submit rejected: {reply}");
    let id = match JsonValue::parse(&reply)
        .expect("submit reply")
        .get("run_id")
    {
        Some(JsonValue::Num(id)) => *id as u64,
        other => panic!("submit reply without run_id: {other:?}"),
    };
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, poll) = client
            .request("GET", &format!("/v1/runs/{id}"), None)
            .expect("poll");
        assert_eq!(status, 200, "poll failed: {poll}");
        match JsonValue::parse(&poll).expect("poll body").get("state") {
            Some(JsonValue::Str(s)) if s == "Completed" => break,
            Some(JsonValue::Str(s)) if s == "Failed" => panic!("run {id} failed: {poll}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "run {id} never finished");
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, payload) = client
        .request("GET", &format!("/v1/runs/{id}/result"), None)
        .expect("fetch");
    assert_eq!(status, 200, "fetch failed: {payload}");
    assert!(payload.contains("\"result\""), "payload without result");
    t0.elapsed()
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize)
        .clamp(1, sorted.len())
        .saturating_sub(1);
    sorted[idx].as_secs_f64() * 1e3
}

fn main() {
    // Verification on: each run carries a deterministic chain-level
    // verify of its winner, so the measured latency is dominated by real
    // flow work rather than scheduler jitter on a ~3 ms replay.
    let server = FlowServer::start(ServerConfig {
        workers: CLIENTS,
        max_inflight: 4 * CLIENTS,
        verify: true,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let addr = server.addr();
    let bodies: Vec<String> = RESOLUTIONS
        .iter()
        .map(|&k| request_for(k).canonical().render())
        .collect();

    // Warm-up: synthesize each resolution once so the timed phase is pure
    // cache replay (serving overhead only, no cold synthesis).
    let mut warm_client = http::Client::new(addr);
    for body in &bodies {
        let warm = drive_run(&mut warm_client, body);
        eprintln!("warm-up run: {:.1} ms", warm.as_secs_f64() * 1e3);
    }

    let t0 = Instant::now();
    let per_client: Vec<(Vec<Duration>, usize, usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut conn = http::Client::new(addr);
                    let samples = (0..RUNS_PER_CLIENT)
                        .map(|i| drive_run(&mut conn, &bodies[(client + i) % bodies.len()]))
                        .collect::<Vec<_>>();
                    (samples, conn.requests(), conn.connects(), conn.reuse_rate())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown();

    let mut latencies: Vec<Duration> = Vec::new();
    for (client, (samples, requests, connects, reuse)) in per_client.into_iter().enumerate() {
        eprintln!(
            "client {client}: {requests} requests on {connects} connections — reuse {:.1}%",
            reuse * 100.0
        );
        latencies.extend(samples);
    }
    latencies.sort();
    let runs = latencies.len();
    let throughput = runs as f64 / wall;
    let p50 = percentile_ms(&latencies, 0.50);
    let p99 = percentile_ms(&latencies, 0.99);
    eprintln!(
        "serve: {runs} runs, {CLIENTS} clients, {:.3} s wall — {throughput:.1} runs/s, \
         p50 {p50:.2} ms, p99 {p99:.2} ms",
        wall
    );

    let json = format!(
        "{{\n  \"serve_throughput\": {{ \"evals_per_sec\": {throughput:.2}, \"evals\": {runs} }},\n  \
         \"serve_p50_ms\": {{ \"evals_per_sec\": {p50:.2}, \"evals\": {runs} }},\n  \
         \"serve_p99_ms\": {{ \"evals_per_sec\": {p99:.2}, \"evals\": {runs} }}\n}}\n"
    );
    std::fs::write("BENCH_SERVE.json", &json).expect("write BENCH_SERVE.json");
    print!("{json}");
    eprintln!("wrote BENCH_SERVE.json");
}
