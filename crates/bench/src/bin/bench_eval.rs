//! Machine-readable evaluator-throughput benchmark: emits `BENCH_EVAL.json`
//! with evals/sec for the hot legs of the synthesis loop (DC solve, hybrid
//! evaluation, full first synthesis and retargeting), so the performance
//! trajectory is tracked PR over PR.
//!
//! Two hybrid rows bracket the fast path: `hybrid_eval_cold` rebuilds the
//! testbench and every workspace per candidate (the shape of the
//! pre-workspace evaluator), while `hybrid_eval` retunes one persistent
//! testbench in place and reuses all simulation buffers (steady state).
//!
//! The `full_pipeline_*` rows measure the chain-level verification leg:
//! the 13-bit winner's 4-3-2 full-pipeline testbench (built from the
//! multi-resolution run's synthesized blocks, MNA dim > 100) evaluated end
//! to end through the reusable workspaces — sparse auto-selection vs the
//! dense override, plus the deterministic chain gain and dimension as
//! gate-able verify numbers.
//!
//! The `tran_*` rows measure the clocked transient sign-off leg on the
//! deterministic all-telescopic 4-3-2 chain: raw adaptive timestep
//! throughput (`tran_step`, steps/s), full four-period ±δ sign-off
//! evaluations (`tran_chain_settle`), and the step-count ratio of the
//! fixed-step oracle at the adaptive run's own minimum dt
//! (`tran_adaptive_vs_fixed_steps` — deterministic, gated two-sided).
//!
//! The `multi_res_flow_*` rows measure the 10/11/12/13-bit flow end to
//! end: `multi_res_flow_waves` runs the retained PR-2 wave-barrier
//! scheduler with no cache (the cold baseline), `multi_res_flow_cached`
//! the dependency-driven executor with the persistent aggressive
//! [`BlockCache`] shared across resolutions (both in blocks/s), and
//! `multi_res_cache_hit_pct` the cross-resolution exact-hit percentage.
//! Detailed per-resolution statistics land in `CACHE_STATS.json` (uploaded
//! as a CI artifact next to `BENCH_EVAL.json`).
//!
//! Run with `cargo run --release -p adc-bench --bin bench_eval`.

use adc_mdac::opamp::{build_telescopic, TelescopicHandles, TelescopicParams};
use adc_mdac::power::{design_chain, PowerModelParams};
use adc_mdac::specs::AdcSpec;
use adc_spice::dc::{dc_operating_point, dc_operating_point_with, DcOptions, DcWorkspace};
use adc_spice::netlist::Circuit;
use adc_spice::process::Process;
use adc_synth::evaluator::{EvalOutcome, Evaluator};
use adc_synth::hybrid::{BenchSetup, BenchTuner, HybridOptions, HybridOtaEvaluator};
use adc_synth::SynthConfig;
use adc_topopt::cache::{key_distance, BlockCache, CachePolicy};
use adc_topopt::enumerate::enumerate_candidates;
use adc_topopt::enumerate::Candidate;
use adc_topopt::executor::ExecutorOptions;
use adc_topopt::flow::{
    ota_requirements, run_flow, synthesize_candidate_set_waves, synthesize_multi_resolution,
    synthesize_ota, FlowRequest, OtaRequirements,
};
use adc_topopt::verify::{build_candidate_testbench, verify_candidate, VerifyOptions};
use std::hint::black_box;
use std::rc::Rc;
use std::time::Instant;

/// One measured row of the report.
struct Row {
    name: &'static str,
    evals_per_sec: f64,
    evals: usize,
}

/// Times `f` for roughly `budget_ms` of wall clock and returns evals/sec.
fn measure<F: FnMut()>(budget_ms: u64, mut f: F) -> (f64, usize) {
    // Warmup.
    f();
    let start = Instant::now();
    let budget = std::time::Duration::from_millis(budget_ms);
    let mut n = 0usize;
    while start.elapsed() < budget {
        f();
        n += 1;
    }
    (n as f64 / start.elapsed().as_secs_f64(), n)
}

/// Telescopic testbench builder with the in-place retuning recipe attached
/// (the same shape `adc_topopt::flow` hands the synthesizer).
fn telescopic_bench(proc: &Process) -> impl Fn(&[f64]) -> BenchSetup + '_ {
    move |x: &[f64]| {
        let tb = build_telescopic(proc, &TelescopicParams::from_vec(x), 1e-12);
        let handles = TelescopicHandles::resolve(&tb.circuit).expect("telescopic handles");
        let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
            handles.retune(ckt, &TelescopicParams::from_vec(x));
        });
        BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
    }
}

fn expect_ok(out: EvalOutcome) {
    match out {
        EvalOutcome::Ok(p) => {
            black_box(p);
        }
        EvalOutcome::Failed(e) => panic!("eval failed: {e}"),
    }
}

fn main() {
    // Detected-feature report: which kernel backend every measured row
    // below dispatches to (`scalar` under ADC_FORCE_SCALAR=1).
    eprintln!(
        "simd backend: {} ({} batch lanes)",
        adc_numerics::simd::backend_name(),
        adc_numerics::simd::MAX_LANES
    );
    let proc = Process::c025();
    let nominal = TelescopicParams::nominal().to_vec();
    let mut rows: Vec<Row> = Vec::new();

    // DC Newton solve of the telescopic OTA testbench: allocating wrapper
    // vs. persistent workspace.
    let tb = build_telescopic(&proc, &TelescopicParams::nominal(), 1e-12);
    let opts = DcOptions::default();
    let (rate, n) = measure(1500, || {
        black_box(dc_operating_point(&tb.circuit, &opts).unwrap());
    });
    rows.push(Row {
        name: "dc_solve",
        evals_per_sec: rate,
        evals: n,
    });
    let mut dc_ws = DcWorkspace::new(&tb.circuit).unwrap();
    let (rate, n) = measure(1500, || {
        black_box(dc_operating_point_with(&mut dc_ws, &tb.circuit, &opts).unwrap());
    });
    rows.push(Row {
        name: "dc_solve_workspace",
        evals_per_sec: rate,
        evals: n,
    });

    // Hybrid evaluation, cold: new evaluator (fresh testbench + fresh
    // workspaces) per candidate — the pre-workspace inner-loop shape.
    let (rate, n) = measure(2000, || {
        let ev = HybridOtaEvaluator::new(telescopic_bench(&proc), HybridOptions::default());
        expect_ok(ev.evaluate(black_box(&nominal)));
    });
    rows.push(Row {
        name: "hybrid_eval_cold",
        evals_per_sec: rate,
        evals: n,
    });

    // Hybrid evaluation, steady state: one persistent evaluator, in-place
    // retuning, all workspaces reused, local-phase warm-started DC — the
    // synthesis inner loop during polish/retargeting.
    let ev = HybridOtaEvaluator::new(telescopic_bench(&proc), HybridOptions::default());
    ev.set_local_phase(true);
    let (rate, n) = measure(2000, || {
        expect_ok(ev.evaluate(black_box(&nominal)));
    });
    rows.push(Row {
        name: "hybrid_eval",
        evals_per_sec: rate,
        evals: n,
    });

    // Cold synthesis + retargeting of the cheapest paper block.
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let chain = design_chain(&spec, &[4, 3, 2], &params);
    let req = ota_requirements(&chain[2], &spec);
    let cfg = SynthConfig {
        iterations: 400,
        nm_iterations: 60,
        seed: 5,
        ..Default::default()
    };
    let t0 = Instant::now();
    let cold = synthesize_ota(&spec.process, &req, &cfg, None);
    let t_cold = t0.elapsed().as_secs_f64();
    rows.push(Row {
        name: "first_synthesis",
        evals_per_sec: cold.evaluations as f64 / t_cold,
        evals: cold.evaluations,
    });
    let t1 = Instant::now();
    let warm = synthesize_ota(&spec.process, &req, &cfg, Some(&cold));
    let t_warm = t1.elapsed().as_secs_f64();
    rows.push(Row {
        name: "retarget",
        evals_per_sec: warm.evaluations as f64 / t_warm,
        evals: warm.evaluations,
    });

    // Multi-resolution flow: 10/11/12/13-bit candidate sets, wave-barrier
    // cold baseline vs dependency-driven executor + persistent aggressive
    // cache. Both rows report block throughput (blocks/s).
    let specs: Vec<AdcSpec> = [10u32, 11, 12, 13]
        .iter()
        .map(|&k| AdcSpec::date05(k))
        .collect();
    let flow_cfg = SynthConfig {
        iterations: 200,
        nm_iterations: 30,
        seed: 11,
        ..Default::default()
    };
    let t2 = Instant::now();
    let mut waves_blocks = 0usize;
    let mut waves_evals = 0usize;
    let mut waves_feasible = 0usize;
    for s in &specs {
        let cands = enumerate_candidates(s.resolution, 7);
        let blocks = synthesize_candidate_set_waves(s, &cands, &params, &flow_cfg);
        waves_blocks += blocks.len();
        waves_evals += blocks.iter().map(|b| b.result.evaluations).sum::<usize>();
        waves_feasible += blocks.iter().filter(|b| b.result.feasible).count();
    }
    let t_waves = t2.elapsed().as_secs_f64();
    rows.push(Row {
        name: "multi_res_flow_waves",
        evals_per_sec: waves_blocks as f64 / t_waves,
        evals: waves_evals,
    });

    let mut cache = BlockCache::new(CachePolicy::Aggressive);
    let t3 = Instant::now();
    let runs = synthesize_multi_resolution(
        &specs,
        &params,
        &flow_cfg,
        &mut cache,
        &ExecutorOptions::default(),
    )
    .expect("multi-resolution flow completed without casualties");
    let t_cached = t3.elapsed().as_secs_f64();
    let cached_blocks: usize = runs.iter().map(|r| r.stats.blocks).sum();
    let spent: usize = runs.iter().map(|r| r.stats.evaluations_spent).sum();
    let hits: usize = runs.iter().map(|r| r.stats.cache_hits).sum();
    rows.push(Row {
        name: "multi_res_flow_cached",
        evals_per_sec: cached_blocks as f64 / t_cached,
        evals: spent,
    });
    let hit_pct = 100.0 * hits as f64 / cached_blocks.max(1) as f64;
    rows.push(Row {
        name: "multi_res_cache_hit_pct",
        evals_per_sec: hit_pct,
        evals: hits,
    });

    // Fault-tolerance overhead: the guarded serial path (template
    // validation + catch_unwind + retry bookkeeping per block) vs a
    // reconstruction of the raw pre-guard serial path on the same 13-bit
    // schedule. Reported as the wall-clock ratio raw/guarded — a
    // machine-independent ≈ 1.0 when the guard rails are free — and the
    // two paths must stay bit-identical.
    let spec13g = AdcSpec::date05(13);
    let cands13 = enumerate_candidates(13, 7);
    let guard_cfg = SynthConfig {
        iterations: 60,
        nm_iterations: 10,
        seed: 11,
        ..Default::default()
    };
    let tg = Instant::now();
    let guarded = run_flow(
        &FlowRequest::new(&spec13g, &cands13, &params, &guard_cfg).serial(),
        None,
    )
    .blocks;
    let t_guarded = tg.elapsed().as_secs_f64();
    let tr = Instant::now();
    // Raw path: replan the warm-start chain exactly as the flow does
    // (nearest same-template earlier key in the 16·Δm + ΔA metric) and run
    // each block straight through `synthesize_ota` with no isolation.
    let mut planned: Vec<((u32, u32), OtaRequirements, Option<usize>)> = Vec::new();
    let mut seen: std::collections::BTreeMap<(u32, u32), usize> = std::collections::BTreeMap::new();
    for cand in &cands13 {
        for design in &design_chain(&spec13g, cand.front_bits(), &params) {
            let key = design.spec.reuse_key();
            if seen.contains_key(&key) {
                continue;
            }
            let req = ota_requirements(design, &spec13g);
            let warm = seen
                .iter()
                .filter(|(_, &idx)| planned[idx].1.template == req.template)
                .min_by_key(|(k, _)| key_distance(**k, key))
                .map(|(_, &idx)| idx);
            seen.insert(key, planned.len());
            planned.push((key, req, warm));
        }
    }
    let mut raw: Vec<((u32, u32), adc_synth::SynthResult)> = Vec::new();
    for (key, req, warm) in &planned {
        let warm_result = warm.map(|j| raw[j].1.clone());
        let r = synthesize_ota(&spec13g.process, req, &guard_cfg, warm_result.as_ref());
        raw.push((*key, r));
    }
    let t_raw = tr.elapsed().as_secs_f64();
    raw.sort_by_key(|(k, _)| *k);
    assert_eq!(raw.len(), guarded.len(), "recovery-overhead paths diverged");
    for ((k, r), b) in raw.iter().zip(guarded.iter()) {
        assert_eq!(*k, b.key, "recovery-overhead key order diverged");
        assert_eq!(
            r.best_x, b.result.best_x,
            "recovery-overhead trajectories diverged at {k:?}"
        );
        assert_eq!(r.evaluations, b.result.evaluations, "at {k:?}");
    }
    rows.push(Row {
        name: "flow_recovery_overhead",
        evals_per_sec: t_raw / t_guarded,
        evals: guarded.len(),
    });

    // Full-pipeline chain verification of the 13-bit winner (4-3-2),
    // reusing the blocks the multi-resolution flow just synthesized.
    let spec13 = specs.last().expect("13-bit spec present");
    let blocks13 = &runs.last().expect("13-bit run present").blocks;
    let winner = Candidate::new(vec![4, 3, 2]);
    let verification = verify_candidate(
        spec13,
        &winner,
        blocks13,
        &params,
        &VerifyOptions::default(),
    )
    .expect("chain verification of the 4-3-2 winner");
    rows.push(Row {
        name: "full_pipeline_gain",
        evals_per_sec: verification.report.gain,
        evals: 1,
    });
    rows.push(Row {
        name: "full_pipeline_mna_dim",
        evals_per_sec: verification.report.mna_dim as f64,
        evals: 1,
    });

    // Chain-evaluation throughput: full evaluate (DC + probes + TF) with
    // the sparse auto-selection, the dense override, and the DC leg alone.
    use adc_spice::dc::DcDamping;
    use adc_spice::linearize::SolverChoice;
    use adc_synth::chain::{ChainEvaluator, ChainOptions};
    let tb = build_candidate_testbench(
        spec13,
        &winner,
        blocks13,
        &params,
        &VerifyOptions::default(),
    )
    .expect("chain testbench");
    let chain_bench = BenchSetup::new(
        tb.circuit.clone(),
        tb.output,
        tb.supply.clone(),
        tb.devices.clone(),
    );
    let mut chain_opts = ChainOptions::default();
    chain_opts.dc.nodeset = tb.nodeset();
    chain_opts.dc.damping = DcDamping::PerNode;
    let mut chain_ev = ChainEvaluator::new(chain_opts.clone());
    let (rate, n) = measure(1500, || {
        black_box(chain_ev.evaluate(&chain_bench).expect("chain eval"));
    });
    rows.push(Row {
        name: "full_pipeline_eval",
        evals_per_sec: rate,
        evals: n,
    });
    let mut chain_ev_dense = ChainEvaluator::with_solver(SolverChoice::Dense, chain_opts);
    let (rate, n) = measure(1500, || {
        black_box(
            chain_ev_dense
                .evaluate(&chain_bench)
                .expect("chain eval dense"),
        );
    });
    rows.push(Row {
        name: "full_pipeline_eval_dense",
        evals_per_sec: rate,
        evals: n,
    });
    let chain_dc_opts = tb.dc_options();
    let mut chain_dc = DcWorkspace::new(&tb.circuit).expect("chain DC workspace");
    let (rate, n) = measure(1500, || {
        black_box(dc_operating_point_with(&mut chain_dc, &tb.circuit, &chain_dc_opts).unwrap());
    });
    rows.push(Row {
        name: "full_pipeline_dc",
        evals_per_sec: rate,
        evals: n,
    });
    eprintln!(
        "full pipeline: dim {} gain {:.3} (ideal {}) sparse dc/tf {}/{}",
        verification.report.mna_dim,
        verification.report.gain,
        verification.gain_expected,
        verification.report.dc_sparse,
        verification.report.tf_sparse
    );

    // Clocked transient sign-off of the all-telescopic 4-3-2 chain (the
    // deterministic sign-off fixture of `tests/pipeline_chain.rs`):
    // `tran_step` is raw adaptive timestep throughput through the sparse
    // workspace, `tran_chain_settle` full 4-period ±δ sign-off
    // evaluations/s, and `tran_adaptive_vs_fixed_steps` the step-count
    // ratio of the fixed-step oracle at the adaptive run's own minimum dt
    // (deterministic — gated two-sided like the verify numbers).
    use adc_mdac::netlist::{build_pipeline, MdacStageConfig, OtaSizing, PipelineOptions};
    use adc_synth::tran_chain::{TranChainEvaluator, TranChainOptions};
    use adc_topopt::verify::build_tran_setup;
    let designs = design_chain(spec13, &[4, 3, 2], &params);
    let stage_gains: Vec<f64> = designs.iter().map(|d| d.spec.gain).collect();
    let telescopic: Vec<MdacStageConfig> = designs
        .iter()
        .map(|d| {
            MdacStageConfig::from_design(d, OtaSizing::Telescopic(TelescopicParams::nominal()))
        })
        .collect();
    let tran_tb = build_pipeline(&spec13.process, &telescopic, &PipelineOptions::default())
        .expect("telescopic sign-off chain");
    let mut tran_setup = build_tran_setup(spec13, &tran_tb, stage_gains);
    let mut tran_ev = TranChainEvaluator::new(TranChainOptions::default());
    let t4 = Instant::now();
    let tran_report = tran_ev
        .evaluate(&mut tran_setup)
        .expect("transient sign-off");
    let t_tran = t4.elapsed().as_secs_f64();
    assert!(
        tran_report.sparse && tran_report.all_settled,
        "sign-off chain must settle through the CSR engine: {tran_report:#?}"
    );
    rows.push(Row {
        name: "tran_step",
        evals_per_sec: (tran_report.accepted + tran_report.rejected) as f64 / t_tran,
        evals: tran_report.accepted,
    });
    let (rate, n) = measure(3000, || {
        black_box(
            tran_ev
                .evaluate(&mut tran_setup)
                .expect("transient sign-off"),
        );
    });
    rows.push(Row {
        name: "tran_chain_settle",
        evals_per_sec: rate,
        evals: n,
    });
    let fixed = tran_ev
        .evaluate_fixed(&mut tran_setup, tran_report.min_dt)
        .expect("fixed-step oracle");
    rows.push(Row {
        name: "tran_adaptive_vs_fixed_steps",
        evals_per_sec: fixed.accepted as f64 / tran_report.accepted.max(1) as f64,
        evals: fixed.accepted,
    });
    eprintln!(
        "transient sign-off: adaptive {} steps, fixed oracle {} at dt {:.3e}s ({:.0}x), settled {}",
        tran_report.accepted,
        fixed.accepted,
        tran_report.min_dt,
        fixed.accepted as f64 / tran_report.accepted.max(1) as f64,
        tran_report.all_settled
    );

    // Cache-statistics artifact: per-resolution breakdown + totals.
    let mut stats_json = String::from("{\n  \"resolutions\": [\n");
    for (i, r) in runs.iter().enumerate() {
        stats_json.push_str(&format!(
            "    {{ \"bits\": {}, \"blocks\": {}, \"cache_hits\": {}, \"cache_seeded\": {}, \
             \"cold\": {}, \"retargeted\": {}, \"evaluations_spent\": {}, \"wall_seconds\": {:.4} }}{}\n",
            r.resolution,
            r.stats.blocks,
            r.stats.cache_hits,
            r.stats.cache_seeded,
            r.stats.cold,
            r.stats.retargeted,
            r.stats.evaluations_spent,
            r.wall_seconds,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    let feasible: usize = runs
        .iter()
        .flat_map(|r| r.blocks.iter())
        .filter(|b| b.result.feasible)
        .count();
    stats_json.push_str(&format!(
        "  ],\n  \"totals\": {{ \"blocks\": {}, \"cache_hits\": {}, \"hit_rate_pct\": {:.2}, \
         \"feasible_blocks\": {}, \"feasible_blocks_waves\": {}, \"evaluations_spent\": {}, \
         \"evaluations_waves\": {}, \
         \"wall_seconds_cached\": {:.4}, \"wall_seconds_waves\": {:.4}, \"speedup\": {:.3} }}\n}}\n",
        cached_blocks,
        hits,
        hit_pct,
        feasible,
        waves_feasible,
        spent,
        waves_evals,
        t_cached,
        t_waves,
        t_waves / t_cached
    ));
    std::fs::write("CACHE_STATS.json", &stats_json).expect("write CACHE_STATS.json");
    eprintln!(
        "wrote CACHE_STATS.json (speedup {:.2}x)",
        t_waves / t_cached
    );

    let mut json = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{ \"evals_per_sec\": {:.2}, \"evals\": {} }}{}\n",
            r.name,
            r.evals_per_sec,
            r.evals,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    std::fs::write("BENCH_EVAL.json", &json).expect("write BENCH_EVAL.json");
    print!("{json}");
    eprintln!("wrote BENCH_EVAL.json");
}
