//! Benchmark regression gate: compares a freshly produced `BENCH_EVAL.json`
//! against the committed `BENCH_BASELINE.json` and fails (exit code 1) when
//! any metric's throughput regressed by more than the allowed fraction.
//!
//! Prints a per-metric delta table in GitHub-flavored markdown so CI can
//! append it to the job summary:
//!
//! ```text
//! cargo run --release -p adc-bench --bin bench_check \
//!     [BENCH_BASELINE.json [BENCH_EVAL.json]]
//! ```
//!
//! Metrics present in only one of the two files are reported but never
//! gate (so adding a new benchmark row doesn't require regenerating the
//! baseline on the spot). The baseline is regenerated deliberately — run
//! `bench_eval` on a quiet machine and commit the refreshed numbers
//! whenever a PR moves throughput on purpose.

use std::process::ExitCode;

/// Largest tolerated fractional throughput drop per metric (CI runners are
/// noisy; the trajectory in EXPERIMENTS.md tracks the finer grain).
/// Override with `BENCH_CHECK_MAX_REGRESSION` (a fraction, e.g. `0.5`) —
/// the baseline records absolute evals/s, so a slower runner *class* than
/// the one that produced it needs either a refreshed baseline or a wider
/// gate.
const MAX_REGRESSION: f64 = 0.30;

/// Metrics that are **deterministic measurements**, not throughput: they
/// gate two-sided with [`EXACT_TOLERANCE`] — a chain whose verified gain,
/// MNA dimension or adaptive step-savings ratio moves in *either*
/// direction is a behavioural change, not runner noise.
const EXACT_METRICS: [&str; 3] = [
    "full_pipeline_gain",
    "full_pipeline_mna_dim",
    "tran_adaptive_vs_fixed_steps",
];

/// Allowed symmetric fractional deviation for [`EXACT_METRICS`].
const EXACT_TOLERANCE: f64 = 0.02;

/// Metrics where **lower is better** (latencies): they gate one-sided in
/// the opposite direction — a *rise* past the gate fails, a drop never
/// does. The value still lives in the `evals_per_sec` slot of the report
/// format; the name says what the number means.
const INVERTED_METRICS: [&str; 2] = ["serve_p50_ms", "serve_p99_ms"];

/// Resolves the gate width: env override or [`MAX_REGRESSION`].
fn max_regression() -> f64 {
    std::env::var("BENCH_CHECK_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| (0.0..1.0).contains(v))
        .unwrap_or(MAX_REGRESSION)
}

/// One `"name": { "evals_per_sec": X, "evals": N }` row of the report.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    name: String,
    evals_per_sec: f64,
}

/// Parses the flat single-object JSON emitted by `bench_eval`. Not a
/// general JSON parser — it reads exactly the format this workspace
/// writes, keeping the gate dependency-free.
fn parse_report(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("evals_per_sec") {
            continue;
        }
        let name = line
            .split('"')
            .nth(1)
            .ok_or_else(|| format!("malformed row: {line}"))?
            .to_string();
        let after = line
            .split("\"evals_per_sec\":")
            .nth(1)
            .ok_or_else(|| format!("malformed row: {line}"))?;
        let num: String = after
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| {
                c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E' || *c == '+'
            })
            .collect();
        let evals_per_sec: f64 = num
            .parse()
            .map_err(|e| format!("bad number {num:?} in row {name}: {e}"))?;
        rows.push(Row {
            name,
            evals_per_sec,
        });
    }
    if rows.is_empty() {
        return Err("no metrics found".into());
    }
    Ok(rows)
}

/// Outcome of comparing one metric across the two reports.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    /// Present in both; within the gate.
    Ok { delta: f64 },
    /// Present in both; dropped more than the gate allows.
    Fail { delta: f64 },
    /// In the baseline but not the current report — informational only.
    MissingFromCurrent,
    /// In the current report but not the baseline (a metric that landed
    /// before a baseline refresh) — informational only, **never** gates.
    NewInCurrent,
}

/// Pure gate evaluation: every metric of either report gets a verdict;
/// only `Fail` verdicts carry gate force. Separated from `main` so the
/// report/ignore semantics are unit-tested.
fn evaluate_gate(baseline: &[Row], current: &[Row], max_regression: f64) -> Vec<(String, Verdict)> {
    let mut out: Vec<(String, Verdict)> = Vec::new();
    for b in baseline {
        let verdict = match current.iter().find(|c| c.name == b.name) {
            None => Verdict::MissingFromCurrent,
            Some(c) => {
                let delta = c.evals_per_sec / b.evals_per_sec - 1.0;
                let ok = if EXACT_METRICS.contains(&b.name.as_str()) {
                    delta.abs() <= EXACT_TOLERANCE
                } else if INVERTED_METRICS.contains(&b.name.as_str()) {
                    delta <= max_regression
                } else {
                    delta >= -max_regression
                };
                if ok {
                    Verdict::Ok { delta }
                } else {
                    Verdict::Fail { delta }
                }
            }
        };
        out.push((b.name.clone(), verdict));
    }
    for c in current {
        if !baseline.iter().any(|b| b.name == c.name) {
            out.push((c.name.clone(), Verdict::NewInCurrent));
        }
    }
    out
}

/// Names of the metrics that fail the gate.
fn failures(verdicts: &[(String, Verdict)]) -> Vec<String> {
    verdicts
        .iter()
        .filter(|(_, v)| matches!(v, Verdict::Fail { .. }))
        .map(|(n, _)| n.clone())
        .collect()
}

/// Loads and parses one report file, mapping every failure mode — file
/// missing, unreadable, truncated, or empty — to a single-line diagnostic
/// that names the offending path (never a panic: a half-written
/// `BENCH_EVAL.json` from an interrupted bench run must fail the gate
/// with a readable message, not a backtrace).
fn load_report(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_report(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_BASELINE.json".into());
    let current_path = args.next().unwrap_or_else(|| "BENCH_EVAL.json".into());

    let (baseline, current) = match (load_report(&baseline_path), load_report(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let max_regression = max_regression();
    println!(
        "### Evaluator-throughput regression gate (≤ {:.0} % drop allowed)",
        max_regression * 100.0
    );
    println!();
    println!("| metric | baseline (evals/s) | current (evals/s) | delta | gate |");
    println!("|---|---:|---:|---:|---|");
    let verdicts = evaluate_gate(&baseline, &current, max_regression);
    for (name, verdict) in &verdicts {
        let base = baseline.iter().find(|b| &b.name == name);
        let cur = current.iter().find(|c| &c.name == name);
        let fmt = |r: Option<&Row>| {
            r.map(|r| format!("{:.0}", r.evals_per_sec))
                .unwrap_or_else(|| "—".into())
        };
        let (delta_col, gate_col) = match verdict {
            Verdict::Ok { delta } => (format!("{:+.1} %", delta * 100.0), "ok".to_string()),
            Verdict::Fail { delta } => (format!("{:+.1} %", delta * 100.0), "**FAIL**".to_string()),
            Verdict::MissingFromCurrent => ("—".into(), "missing (ignored)".into()),
            Verdict::NewInCurrent => ("—".into(), "new (ignored)".into()),
        };
        println!(
            "| `{name}` | {} | {} | {delta_col} | {gate_col} |",
            fmt(base),
            fmt(cur)
        );
    }
    println!();
    let failed = failures(&verdicts);
    if failed.is_empty() {
        println!(
            "All gated metrics within {:.0} % of baseline.",
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "**Regression gate failed** for: {} (refresh `BENCH_BASELINE.json` only for intentional changes).",
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "dc_solve": { "evals_per_sec": 3706.63, "evals": 5560 },
  "hybrid_eval": { "evals_per_sec": 5085.74, "evals": 10172 }
}
"#;

    #[test]
    fn parses_bench_eval_format() {
        let rows = parse_report(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "dc_solve");
        assert!((rows[0].evals_per_sec - 3706.63).abs() < 1e-9);
        assert_eq!(rows[1].name, "hybrid_eval");
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("\"x\": { \"evals_per_sec\": nope }").is_err());
    }

    /// A missing report file is a one-line diagnostic naming the path,
    /// never a panic.
    #[test]
    fn missing_report_file_is_a_named_diagnostic() {
        let err = load_report("/nonexistent/BENCH_EVAL.json").unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        assert!(err.contains("/nonexistent/BENCH_EVAL.json"), "{err}");
    }

    /// A truncated report (interrupted bench run) fails cleanly: rows cut
    /// off mid-number parse or the file yields no metrics, and the
    /// diagnostic names the file.
    #[test]
    fn truncated_report_fails_cleanly() {
        let dir = std::env::temp_dir().join("bench_check_truncated_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_EVAL.json");
        // Cut mid-row: the evals_per_sec line exists but the value is gone.
        std::fs::write(&path, "{\n  \"dc_solve\": { \"evals_per_sec\": ").unwrap();
        let err = load_report(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("BENCH_EVAL.json"), "{err}");
        // Cut before any row: parses to zero metrics.
        std::fs::write(&path, "{\n").unwrap();
        let err = load_report(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("no metrics found"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn row(name: &str, rate: f64) -> Row {
        Row {
            name: name.into(),
            evals_per_sec: rate,
        }
    }

    /// A metric present in the current report but missing from the
    /// baseline is informational: it must never fail the gate, so new
    /// benchmark rows can land before the baseline refresh.
    #[test]
    fn new_metrics_report_but_never_gate() {
        let baseline = vec![row("dc_solve", 1000.0)];
        let current = vec![
            row("dc_solve", 990.0),
            row("multi_res_flow_cached", 123.0), // brand new
        ];
        let verdicts = evaluate_gate(&baseline, &current, 0.30);
        assert!(failures(&verdicts).is_empty(), "{verdicts:?}");
        assert!(verdicts
            .iter()
            .any(|(n, v)| n == "multi_res_flow_cached" && *v == Verdict::NewInCurrent));
    }

    /// The reverse direction — baseline metric missing from the current
    /// report — is also informational (a renamed/retired bench must not
    /// hard-fail CI either).
    #[test]
    fn missing_metrics_report_but_never_gate() {
        let baseline = vec![row("old_bench", 1000.0), row("dc_solve", 1000.0)];
        let current = vec![row("dc_solve", 1000.0)];
        let verdicts = evaluate_gate(&baseline, &current, 0.30);
        assert!(failures(&verdicts).is_empty(), "{verdicts:?}");
        assert!(verdicts
            .iter()
            .any(|(n, v)| n == "old_bench" && *v == Verdict::MissingFromCurrent));
    }

    /// Deterministic verify metrics gate two-sided: an *increase* in the
    /// chain's measured gain fails just like a drop, while ordinary
    /// throughput metrics stay one-sided.
    #[test]
    fn exact_metrics_gate_both_directions() {
        let baseline = vec![
            row("full_pipeline_gain", 62.9),
            row("full_pipeline_mna_dim", 124.0),
            row("hybrid_eval", 1000.0),
        ];
        let improved = vec![
            row("full_pipeline_gain", 125.8), // 2x "better" — still a change
            row("full_pipeline_mna_dim", 124.0),
            row("hybrid_eval", 2000.0), // throughput gains never gate
        ];
        let verdicts = evaluate_gate(&baseline, &improved, 0.30);
        assert_eq!(failures(&verdicts), vec!["full_pipeline_gain".to_string()]);
        // Within the symmetric tolerance passes.
        let close = vec![
            row("full_pipeline_gain", 63.5),
            row("full_pipeline_mna_dim", 124.0),
            row("hybrid_eval", 900.0),
        ];
        assert!(failures(&evaluate_gate(&baseline, &close, 0.30)).is_empty());
    }

    /// Inverted metrics (latencies) gate in the opposite direction: a p99
    /// that *rises* past the gate fails, while a drop — which would fail a
    /// throughput row of the same magnitude — is an improvement and passes.
    #[test]
    fn inverted_metrics_gate_on_rises_not_drops() {
        let baseline = vec![row("serve_p99_ms", 100.0), row("hybrid_eval", 1000.0)];
        let slower = vec![
            row("serve_p99_ms", 140.0), // +40 % latency: fails at 30 % gate
            row("hybrid_eval", 1000.0),
        ];
        let verdicts = evaluate_gate(&baseline, &slower, 0.30);
        assert_eq!(failures(&verdicts), vec!["serve_p99_ms".to_string()]);
        let faster = vec![
            row("serve_p99_ms", 50.0), // −50 %: a win, never gates
            row("hybrid_eval", 1000.0),
        ];
        assert!(failures(&evaluate_gate(&baseline, &faster, 0.30)).is_empty());
        let slightly_slower = vec![
            row("serve_p99_ms", 120.0), // +20 %: within the gate
            row("hybrid_eval", 1000.0),
        ];
        assert!(failures(&evaluate_gate(&baseline, &slightly_slower, 0.30)).is_empty());
    }

    /// Real regressions on shared metrics still gate.
    #[test]
    fn regressions_on_shared_metrics_fail() {
        let baseline = vec![row("dc_solve", 1000.0), row("hybrid_eval", 1000.0)];
        let current = vec![
            row("dc_solve", 650.0),    // −35 %: fails at 30 % gate
            row("hybrid_eval", 750.0), // −25 %: within gate
        ];
        let verdicts = evaluate_gate(&baseline, &current, 0.30);
        assert_eq!(failures(&verdicts), vec!["dc_solve".to_string()]);
    }
}
