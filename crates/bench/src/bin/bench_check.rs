//! Benchmark regression gate: compares a freshly produced `BENCH_EVAL.json`
//! against the committed `BENCH_BASELINE.json` and fails (exit code 1) when
//! any metric's throughput regressed by more than the allowed fraction.
//!
//! Prints a per-metric delta table in GitHub-flavored markdown so CI can
//! append it to the job summary:
//!
//! ```text
//! cargo run --release -p adc-bench --bin bench_check \
//!     [BENCH_BASELINE.json [BENCH_EVAL.json]]
//! ```
//!
//! Metrics present in only one of the two files are reported but never
//! gate (so adding a new benchmark row doesn't require regenerating the
//! baseline on the spot). The baseline is regenerated deliberately — run
//! `bench_eval` on a quiet machine and commit the refreshed numbers
//! whenever a PR moves throughput on purpose.

use std::process::ExitCode;

/// Largest tolerated fractional throughput drop per metric (CI runners are
/// noisy; the trajectory in EXPERIMENTS.md tracks the finer grain).
/// Override with `BENCH_CHECK_MAX_REGRESSION` (a fraction, e.g. `0.5`) —
/// the baseline records absolute evals/s, so a slower runner *class* than
/// the one that produced it needs either a refreshed baseline or a wider
/// gate.
const MAX_REGRESSION: f64 = 0.30;

/// Resolves the gate width: env override or [`MAX_REGRESSION`].
fn max_regression() -> f64 {
    std::env::var("BENCH_CHECK_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| (0.0..1.0).contains(v))
        .unwrap_or(MAX_REGRESSION)
}

/// One `"name": { "evals_per_sec": X, "evals": N }` row of the report.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    name: String,
    evals_per_sec: f64,
}

/// Parses the flat single-object JSON emitted by `bench_eval`. Not a
/// general JSON parser — it reads exactly the format this workspace
/// writes, keeping the gate dependency-free.
fn parse_report(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("evals_per_sec") {
            continue;
        }
        let name = line
            .split('"')
            .nth(1)
            .ok_or_else(|| format!("malformed row: {line}"))?
            .to_string();
        let after = line
            .split("\"evals_per_sec\":")
            .nth(1)
            .ok_or_else(|| format!("malformed row: {line}"))?;
        let num: String = after
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| {
                c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E' || *c == '+'
            })
            .collect();
        let evals_per_sec: f64 = num
            .parse()
            .map_err(|e| format!("bad number {num:?} in row {name}: {e}"))?;
        rows.push(Row {
            name,
            evals_per_sec,
        });
    }
    if rows.is_empty() {
        return Err("no metrics found".into());
    }
    Ok(rows)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_BASELINE.json".into());
    let current_path = args.next().unwrap_or_else(|| "BENCH_EVAL.json".into());

    let read = |path: &str| -> Result<Vec<Row>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_report(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (read(&baseline_path), read(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let max_regression = max_regression();
    println!(
        "### Evaluator-throughput regression gate (≤ {:.0} % drop allowed)",
        max_regression * 100.0
    );
    println!();
    println!("| metric | baseline (evals/s) | current (evals/s) | delta | gate |");
    println!("|---|---:|---:|---:|---|");
    let mut failed = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            println!(
                "| `{}` | {:.0} | — | — | missing (ignored) |",
                b.name, b.evals_per_sec
            );
            continue;
        };
        let delta = c.evals_per_sec / b.evals_per_sec - 1.0;
        let ok = delta >= -max_regression;
        println!(
            "| `{}` | {:.0} | {:.0} | {:+.1} % | {} |",
            b.name,
            b.evals_per_sec,
            c.evals_per_sec,
            delta * 100.0,
            if ok { "ok" } else { "**FAIL**" }
        );
        if !ok {
            failed.push(b.name.clone());
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.name == c.name) {
            println!(
                "| `{}` | — | {:.0} | — | new (ignored) |",
                c.name, c.evals_per_sec
            );
        }
    }
    println!();
    if failed.is_empty() {
        println!(
            "All gated metrics within {:.0} % of baseline.",
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "**Regression gate failed** for: {} (refresh `BENCH_BASELINE.json` only for intentional changes).",
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "dc_solve": { "evals_per_sec": 3706.63, "evals": 5560 },
  "hybrid_eval": { "evals_per_sec": 5085.74, "evals": 10172 }
}
"#;

    #[test]
    fn parses_bench_eval_format() {
        let rows = parse_report(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "dc_solve");
        assert!((rows[0].evals_per_sec - 3706.63).abs() < 1e-9);
        assert_eq!(rows[1].name, "hybrid_eval");
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("\"x\": { \"evals_per_sec\": nope }").is_err());
    }
}
