//! Reproduces the paper's §4 effort observation: "Setting up the first
//! synthesis required 2-3 weeks, however, the time reduced dramatically to
//! 1 day for subsequent blocks, which only involve retargeting".
//!
//! We measure the mechanism: evaluations and wall time of a cold block
//! synthesis versus a warm-started retargeting run.
//!
//! Run with `cargo run --release -p adc-bench --bin effort`.

use adc_mdac::power::{design_chain, PowerModelParams};
use adc_mdac::specs::AdcSpec;
use adc_synth::SynthConfig;
use adc_topopt::flow::{ota_requirements, synthesize_ota, OtaRequirements};

fn main() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let chain = design_chain(&spec, &[4, 3, 2], &params);
    let req_last = ota_requirements(&chain[2], &spec);
    let cfg = SynthConfig {
        iterations: 1000,
        nm_iterations: 100,
        seed: 5,
        ..Default::default()
    };

    println!("=== Effort table: cold synthesis vs retargeting (paper §4) ===\n");
    let t0 = std::time::Instant::now();
    let cold = synthesize_ota(&spec.process, &req_last, &cfg, None);
    let t_cold = t0.elapsed();

    // Retarget the block to two neighbouring specs.
    let mut rows = vec![(
        "cold: (2, 8) block".to_string(),
        cold.evaluations,
        t_cold,
        cold.feasible,
    )];
    for (label, scale) in [
        ("retarget: −20 % gain", 0.8),
        ("retarget: +15 % speed", 1.0),
    ] {
        let req = OtaRequirements {
            a0_min: req_last.a0_min * scale,
            unity_min: req_last.unity_min * if scale == 1.0 { 1.15 } else { 1.0 },
            ..req_last.clone()
        };
        let t1 = std::time::Instant::now();
        let warm = synthesize_ota(&spec.process, &req, &cfg, Some(&cold));
        rows.push((
            label.to_string(),
            warm.evaluations,
            t1.elapsed(),
            warm.feasible,
        ));
    }

    println!(
        "{:<26}{:>14}{:>14}{:>10}",
        "run", "evaluations", "wall time", "feasible"
    );
    for (label, evals, wall, feasible) in &rows {
        println!("{:<26}{:>14}{:>14.2?}{:>10}", label, evals, wall, feasible);
    }
    let ratio = rows[0].1 as f64 / rows[1].1.max(1) as f64;
    println!("\ncold/retarget evaluation ratio: {ratio:.1}×");
    println!("(paper: 2-3 weeks for the first synthesis → 1 day for retargeted blocks, ~15×)");
}
