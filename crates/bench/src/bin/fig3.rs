//! Regenerates Fig. 3: the optimum-candidate-enumeration decision rules.
//!
//! Run with `cargo run --release -p adc-bench --bin fig3`.

use adc_mdac::power::PowerModelParams;
use adc_topopt::report::fig3_table;
use adc_topopt::rules::derive_rules;

fn main() {
    println!("=== Fig. 3 reproduction: optimum candidate enumeration rules ===\n");
    let rules = derive_rules(8..=14, &PowerModelParams::calibrated());
    print!("{}", fig3_table(&rules));
    println!("\nDerived bands (paper: Bit≤8 → {{2}}, MSB∈{{9,10}} → {{2,3}}, MSB≥11 → {{2,3,4}}):");
    for m in 2..=4u32 {
        if let Some((lo, hi)) = rules.band_for_max_bits(m) {
            println!("  max stage resolution {m}: K ∈ [{lo}, {hi}]");
        }
    }
}
