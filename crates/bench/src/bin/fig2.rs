//! Regenerates Fig. 2: total front-end power for every configuration at
//! 10–13 bits, marking each resolution's optimum.
//!
//! Run with `cargo run --release -p adc-bench --bin fig2`.

use adc_bench::all_reports;
use adc_topopt::report::fig2_table;

fn main() {
    println!("=== Fig. 2 reproduction: total power for the first ~6 effective bits ===\n");
    let reports = all_reports();
    print!("{}", fig2_table(&reports));
    println!("\nPaper optima: 3-2 (10b), 4-2 (11b), 4-2-2 (12b), 4-3-2 (13b).");
    println!("Measured optima:");
    for r in &reports {
        println!(
            "  K = {:>2}: {}  (last stage {} bits)",
            r.spec.resolution,
            r.best().candidate,
            r.best().candidate.last_stage_bits()
        );
    }
}
