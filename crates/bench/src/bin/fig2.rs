//! Regenerates Fig. 2: total front-end power for every configuration at
//! 10–13 bits, marking each resolution's optimum.
//!
//! Run with `cargo run --release -p adc-bench --bin fig2`.

use adc_bench::all_reports;
use adc_mdac::power::PowerModelParams;
use adc_synth::SynthConfig;
use adc_topopt::flow::{run_flow, FlowRequest};
use adc_topopt::report::{fig2_table, verify_table};
use adc_topopt::verify::{verify_candidate, VerifyOptions};

fn main() {
    println!("=== Fig. 2 reproduction: total power for the first ~6 effective bits ===\n");
    let reports = all_reports();
    print!("{}", fig2_table(&reports));
    println!("\nPaper optima: 3-2 (10b), 4-2 (11b), 4-2-2 (12b), 4-3-2 (13b).");
    println!("Measured optima:");
    for r in &reports {
        println!(
            "  K = {:>2}: {}  (last stage {} bits)",
            r.spec.resolution,
            r.best().candidate,
            r.best().candidate.last_stage_bits()
        );
    }

    // Circuit-level sign-off: every resolution's winner gets its chain
    // testbench evaluated next to the summed-stage ranking numbers.
    println!("\n=== Chain-level verification of each optimum ===\n");
    let params = PowerModelParams::calibrated();
    let cfg = SynthConfig {
        iterations: 200,
        nm_iterations: 30,
        seed: 11,
        ..Default::default()
    };
    let mut verifications = Vec::new();
    for r in &reports {
        let winner = r.best().candidate.clone();
        let winner_set = std::slice::from_ref(&winner);
        let blocks = run_flow(&FlowRequest::new(&r.spec, winner_set, &params, &cfg), None).blocks;
        match verify_candidate(
            &r.spec,
            &winner,
            &blocks,
            &params,
            &VerifyOptions::default(),
        ) {
            Ok(v) => verifications.push(v),
            Err(e) => println!("K = {}: chain verification failed: {e}", r.spec.resolution),
        }
    }
    print!("{}", verify_table(&verifications));
}
