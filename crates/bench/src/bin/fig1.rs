//! Regenerates Fig. 1: stage power for every 13-bit ADC configuration.
//!
//! Run with `cargo run --release -p adc-bench --bin fig1`.

use adc_bench::report_for;
use adc_mdac::power::PowerModelParams;
use adc_mdac::specs::AdcSpec;
use adc_synth::SynthConfig;
use adc_topopt::flow::{distinct_mdac_specs, run_flow, FlowRequest};
use adc_topopt::report::{fig1_table, totals_csv, verify_table};
use adc_topopt::verify::{verify_candidate, VerifyOptions};

fn main() {
    let report = report_for(13);
    println!("=== Fig. 1 reproduction: stage power, 13-bit 40 MSPS, 0.25 µm 3.3 V ===\n");
    print!("{}", fig1_table(&report));

    let spec = AdcSpec::date05(13);
    let cands: Vec<_> = report.rows.iter().map(|r| r.candidate.clone()).collect();
    let keys = distinct_mdac_specs(&spec, &cands);
    println!(
        "\ndistinct MDAC blocks across the seven candidates: {} (paper: eleven)",
        keys.len()
    );

    println!("\nCSV:\n{}", totals_csv(&report));
    println!("Paper shape checks:");
    let p1: Vec<(String, f64)> = report
        .rows
        .iter()
        .map(|r| (r.candidate.to_string(), r.stage_power[0] * 1e3))
        .collect();
    let max = p1.iter().map(|(_, p)| *p).fold(f64::MIN, f64::max);
    let min = p1.iter().map(|(_, p)| *p).fold(f64::MAX, f64::min);
    println!(
        "  first-stage power spread (max/min): {:.3} — 'mostly independent of m1'",
        max / min
    );
    println!(
        "  minimum-power configuration: {} — paper: 4-3-2",
        report.best().candidate
    );

    // Circuit-level sign-off of the winner: synthesize its blocks on a
    // small budget and run the full-pipeline chain testbench.
    println!("\n=== Chain-level verification of the winner ===\n");
    let params = PowerModelParams::calibrated();
    let winner = report.best().candidate.clone();
    let cfg = SynthConfig {
        iterations: 200,
        nm_iterations: 30,
        seed: 11,
        ..Default::default()
    };
    let winner_set = std::slice::from_ref(&winner);
    let blocks = run_flow(&FlowRequest::new(&spec, winner_set, &params, &cfg), None).blocks;
    match verify_candidate(&spec, &winner, &blocks, &params, &VerifyOptions::default()) {
        Ok(v) => print!("{}", verify_table(std::slice::from_ref(&v))),
        Err(e) => println!("chain verification failed: {e}"),
    }
}
