//! Ad-hoc hot-path timing breakdown used while tuning the SIMD/batching
//! work: prints per-leg microseconds for the hybrid OTA evaluation and the
//! full-pipeline chain evaluation, plus batched-vs-serial complex solve
//! micro-timings at both dimensions.
//!
//! Run with `cargo run --release -p adc-bench --example prof_hotpath`.

use adc_mdac::opamp::{build_telescopic, TelescopicParams};
use adc_mdac::power::{design_chain, PowerModelParams};
use adc_mdac::specs::AdcSpec;
use adc_numerics::complex::Complex;
use adc_spice::dc::{dc_operating_point_with, DcOptions, DcWorkspace};
use adc_spice::linearize::{ComplexMnaWorkspace, SmallSignal};
use adc_spice::process::Process;
use std::hint::black_box;
use std::time::Instant;

fn time_us<F: FnMut()>(label: &str, reps: usize, mut f: F) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("{label:40} {us:10.2} us");
    us
}

/// Times the batch workspace legs (assembly+factor, solve, det) directly
/// against the serial sparse LU on the same system.
fn batch_legs(ss: &SmallSignal) {
    use adc_numerics::sparse::{CCsrMatrix, CSparseLu, CSparseLuBatch, CsrPattern, Symbolic};
    use std::sync::Arc;
    let dim = ss.dim();
    let mut entries: Vec<(usize, usize)> = Vec::with_capacity(ss.base.len() + ss.cap_entries.len());
    entries.extend(ss.base.iter().map(|&(r, c, _)| (r, c)));
    entries.extend(ss.cap_entries.iter().map(|&(r, c, _)| (r, c)));
    let (pattern, slots) = CsrPattern::from_entries(dim, &entries);
    let sym = Symbolic::analyze(&pattern).unwrap();
    println!(
        "    pattern nnz {} factor nnz {} dim {}",
        pattern.nnz(),
        sym.factor_nnz(),
        sym.dim()
    );
    let (base_slots, cap_slots) = slots.split_at(ss.base.len());
    let mut base_vals = vec![Complex::ZERO; pattern.nnz()];
    for (&slot, &(_, _, g)) in base_slots.iter().zip(ss.base.iter()) {
        base_vals[slot] += Complex::from_real(g);
    }
    let cap_vals: Vec<f64> = ss.cap_entries.iter().map(|&(_, _, c)| c).collect();
    let s8: Vec<Complex> = (0..8)
        .map(|i| Complex::from_polar(1e8, 0.1 + 0.3 * i as f64))
        .collect();
    let mut batch = CSparseLuBatch::new(Arc::clone(&sym));
    time_us("  batch8 factor_scaled", 2000, || {
        batch
            .factor_scaled(&base_vals, cap_slots, &cap_vals, black_box(&s8))
            .unwrap();
    });
    let mut xs = vec![Complex::ZERO; 8 * dim];
    let mut dets = vec![Complex::ZERO; 8];
    time_us("  batch8 solve_into", 2000, || {
        batch.solve_into(&ss.b, &mut xs);
    });
    time_us("  batch8 det_into", 2000, || {
        batch.det_into(&mut dets);
    });
    let mut y = CCsrMatrix::zeros(Arc::clone(&pattern));
    let mut lu = CSparseLu::new(Arc::clone(&sym));
    let mut x1 = vec![Complex::ZERO; dim];
    time_us("  serial assemble+factor", 2000, || {
        y.values_mut().copy_from_slice(&base_vals);
        y.scatter_add_scaled(cap_slots, &cap_vals, black_box(s8[0]));
        lu.factor_into(&y).unwrap();
    });
    time_us("  serial solve_into", 2000, || {
        lu.solve_into(&ss.b, &mut x1);
    });
    time_us("  serial det", 2000, || {
        black_box(lu.det());
    });
}

fn solve_breakdown(name: &str, circuit: &adc_spice::netlist::Circuit, opts: &DcOptions) {
    let mut dc = DcWorkspace::new(circuit).unwrap();
    let op = dc_operating_point_with(&mut dc, circuit, opts).unwrap();
    let mut ss = SmallSignal::new();
    let topo = ss.bind(circuit, &op, 0.0).unwrap();
    let mut eng = ComplexMnaWorkspace::new();
    eng.bind(&ss, topo);
    let dim = ss.dim();
    println!("--- {name}: dim {dim} ---");
    let s0 = Complex::new(0.0, 2.0 * std::f64::consts::PI * 1e6);
    let mut x = vec![Complex::ZERO; dim];
    time_us("serial factor+solve+det (1 sample)", 2000, || {
        eng.factor_at_or_demote(black_box(s0), &ss).unwrap();
        eng.solve_into(&ss.b, &mut x);
        black_box(eng.det());
    });
    for k in [2usize, 4, 8] {
        let s_list: Vec<Complex> = (0..k)
            .map(|i| Complex::from_polar(1e8, 0.1 + 0.3 * i as f64))
            .collect();
        let mut xs = vec![Complex::ZERO; k * dim];
        let mut dets = vec![Complex::ZERO; k];
        time_us(
            &format!("batched factor+solve+det ({k} samples)"),
            2000,
            || {
                eng.solve_det_batch(black_box(&s_list), &ss, &ss.b, &mut xs, &mut dets)
                    .unwrap();
            },
        );
    }
    batch_legs(&ss);
}

fn main() {
    use adc_synth::chain::{ChainEvaluator, ChainOptions};
    use adc_synth::evaluator::{EvalOutcome, Evaluator};
    use adc_synth::hybrid::{BenchSetup, HybridOptions, HybridOtaEvaluator};
    use adc_topopt::verify::{build_candidate_testbench, VerifyOptions};

    println!("simd backend: {}", adc_numerics::simd::backend_name());
    let proc = Process::c025();
    let nominal = TelescopicParams::nominal().to_vec();

    // Hybrid leg breakdown on the telescopic OTA.
    let tb = build_telescopic(&proc, &TelescopicParams::nominal(), 1e-12);
    let dc_opts = DcOptions {
        damping: adc_spice::dc::DcDamping::PerNode,
        ..Default::default()
    };
    let mut dc = DcWorkspace::new(&tb.circuit).unwrap();
    time_us("hybrid: DC cold", 500, || {
        black_box(dc_operating_point_with(&mut dc, &tb.circuit, &dc_opts).unwrap());
    });
    let op = dc_operating_point_with(&mut dc, &tb.circuit, &dc_opts).unwrap();
    let mut tf_ws = adc_sfg::nettf::NetTfWorkspace::new();
    let nettf = adc_sfg::nettf::NetTfOptions::default();
    time_us("hybrid: extract_tf_with", 2000, || {
        black_box(
            adc_sfg::nettf::extract_tf_with(&mut tf_ws, &tb.circuit, &op, tb.output, &nettf)
                .unwrap(),
        );
    });
    let tf =
        adc_sfg::nettf::extract_tf_with(&mut tf_ws, &tb.circuit, &op, tb.output, &nettf).unwrap();
    time_us("hybrid: cancel_common_roots", 2000, || {
        black_box(tf.clone().cancel_common_roots(1e-5));
    });
    let tfc = tf.clone().cancel_common_roots(1e-5);
    time_us("hybrid: unity_gain_freq", 2000, || {
        black_box(tfc.unity_gain_freq(1e4, 50e9));
    });
    let fu0 = tfc.unity_gain_freq(1e4, 50e9).unwrap_or(1e6);
    time_us("hybrid: phase_exact_deg x2", 2000, || {
        black_box(tfc.phase_exact_deg(1e4) - tfc.phase_exact_deg(fu0));
    });
    time_us("hybrid: unity_gain+phase", 2000, || {
        if let Some(fu) = tfc.unity_gain_freq(1e4, 50e9) {
            black_box(tfc.phase_exact_deg(1e4) - tfc.phase_exact_deg(fu));
        }
    });
    let ev = HybridOtaEvaluator::new(
        |x: &[f64]| {
            let tb = build_telescopic(&proc, &TelescopicParams::from_vec(x), 1e-12);
            BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices)
        },
        HybridOptions::default(),
    );
    ev.set_local_phase(true);
    time_us("hybrid: full evaluate", 2000, || {
        match ev.evaluate(&nominal) {
            EvalOutcome::Ok(p) => {
                black_box(p);
            }
            EvalOutcome::Failed(e) => panic!("{e}"),
        }
    });
    solve_breakdown("telescopic", &tb.circuit, &dc_opts);

    // Chain leg breakdown on the 4-3-2 full pipeline.
    let spec13 = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let designs = design_chain(&spec13, &[4, 3, 2], &params);
    let blocks: Vec<adc_topopt::flow::MdacBlock> = designs
        .iter()
        .map(|d| {
            let req = adc_topopt::flow::ota_requirements(d, &spec13);
            let cfg = adc_synth::SynthConfig {
                iterations: 40,
                nm_iterations: 10,
                seed: 5,
                ..Default::default()
            };
            let result = adc_topopt::flow::synthesize_ota(&spec13.process, &req, &cfg, None);
            adc_topopt::flow::MdacBlock {
                key: d.spec.reuse_key(),
                requirements: req,
                result,
                retargeted: false,
                origin: adc_topopt::flow::BlockOrigin::Cold,
            }
        })
        .collect();
    let vtb = build_candidate_testbench(
        &spec13,
        &adc_topopt::enumerate::Candidate::new(vec![4, 3, 2]),
        &blocks,
        &params,
        &VerifyOptions::default(),
    )
    .expect("chain testbench");
    let chain_bench = BenchSetup::new(
        vtb.circuit.clone(),
        vtb.output,
        vtb.supply.clone(),
        vtb.devices.clone(),
    );
    let mut chain_opts = ChainOptions::default();
    chain_opts.dc.nodeset = vtb.nodeset();
    chain_opts.dc.damping = adc_spice::dc::DcDamping::PerNode;
    let mut chain_dc = DcWorkspace::new(&vtb.circuit).unwrap();
    let chain_dc_opts = vtb.dc_options();
    time_us("chain: DC", 200, || {
        black_box(dc_operating_point_with(&mut chain_dc, &vtb.circuit, &chain_dc_opts).unwrap());
    });
    let cop = dc_operating_point_with(&mut chain_dc, &vtb.circuit, &chain_dc_opts).unwrap();
    let mut ctf_ws = adc_sfg::nettf::NetTfWorkspace::new();
    time_us("chain: extract_tf_with", 200, || {
        black_box(
            adc_sfg::nettf::extract_tf_with(&mut ctf_ws, &vtb.circuit, &cop, vtb.output, &nettf)
                .unwrap(),
        );
    });
    let mut chain_ev = ChainEvaluator::new(chain_opts);
    time_us("chain: full evaluate", 200, || {
        black_box(chain_ev.evaluate(&chain_bench).expect("chain eval"));
    });
    solve_breakdown("chain 4-3-2", &vtb.circuit, &chain_dc_opts);
}
