//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness, providing the subset of the 0.5 API this workspace's
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! (with `sample_size` and `finish`), [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so this local crate
//! keeps `cargo bench` hermetic. Timing is a simple warmup + timed-batch
//! mean/min report rather than criterion's full bootstrap statistics; swap
//! this path dependency for the real crate when a registry is available.

use std::time::{Duration, Instant};

/// Re-export mirroring criterion's `black_box` (criterion 0.5 re-exports
/// `std::hint::black_box` under a deprecation shim).
pub use std::hint::black_box;

/// Target wall-clock budget per benchmark measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warmup budget before measurement.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Benchmark driver handed to `b.iter(..)` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over `self.iters` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup: one-shot call, then scale iteration count to the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    while warm_start.elapsed() < WARMUP_BUDGET {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
        if per_iter >= WARMUP_BUDGET {
            break;
        }
    }
    let budget_iters = (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
    let samples = sample_size.min(budget_iters).max(1);
    let iters_per_sample = (budget_iters / samples).max(1);

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters_per_sample as u32;
        best = best.min(per);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }
    let mean = total / total_iters.max(1) as u32;
    println!(
        "{id:<55} mean {:>12} min {:>12} ({} samples x {} iters)",
        fmt_duration(mean),
        fmt_duration(best),
        samples,
        iters_per_sample
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark manager (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Fresh manager with the default sample size.
    pub fn new() -> Self {
        Criterion { sample_size: 100 }
    }

    /// Sets the default number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }

    /// Called by `criterion_main!` after all groups run (criterion prints its
    /// summary here; the stand-in has nothing buffered).
    pub fn final_summary(&mut self) {}
}

/// Group of benchmarks sharing configuration (stand-in for
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(id, n, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::new();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(3 * 3)));
        g.finish();
    }
}
