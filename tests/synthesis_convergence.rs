//! Circuit-level synthesis integration: the hybrid evaluator drives the
//! annealer to a feasible OTA sizing for a relaxed MDAC spec, and
//! retargeting reuses the result with far fewer evaluations.

use pipelined_adc::mdac::power::{design_chain, PowerModelParams};
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::synth::SynthConfig;
use pipelined_adc::topopt::flow::{
    ota_requirements, synthesize_ota, OtaRequirements, TemplateKind,
};

#[test]
fn telescopic_synthesis_reaches_relaxed_spec() {
    // A relaxed back-end-class block: modest gain, modest speed.
    let spec = AdcSpec::date05(13);
    let req = OtaRequirements {
        a0_min: 300.0,
        unity_min: 150e6,
        pm_min: 55.0,
        c_load: 0.4e-12,
        template: TemplateKind::Telescopic,
    };
    let cfg = SynthConfig {
        iterations: 900,
        nm_iterations: 100,
        seed: 17,
        ..Default::default()
    };
    let run = synthesize_ota(&spec.process, &req, &cfg, None);
    assert!(run.feasible, "not feasible: {:?}", run.best_perf);
    assert!(run.best_perf.get("power").unwrap() < 20e-3);
    assert!(run.best_perf.get("pm").unwrap() >= 55.0);
}

#[test]
fn retargeting_is_cheaper_than_cold_start() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let chain = design_chain(&spec, &[4, 3, 2], &params);
    // Last-stage block: cheapest real requirement set.
    let req = ota_requirements(&chain[2], &spec);
    let cfg = SynthConfig {
        iterations: 700,
        nm_iterations: 80,
        seed: 23,
        ..Default::default()
    };
    let cold = synthesize_ota(&spec.process, &req, &cfg, None);
    // Retarget to a slightly relaxed spec.
    let relaxed = OtaRequirements {
        a0_min: req.a0_min * 0.8,
        unity_min: req.unity_min * 0.9,
        ..req.clone()
    };
    let warm = synthesize_ota(&spec.process, &relaxed, &cfg, Some(&cold));
    assert!(
        warm.evaluations * 2 < cold.evaluations,
        "warm {} vs cold {}",
        warm.evaluations,
        cold.evaluations
    );
}
