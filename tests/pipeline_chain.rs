//! Full-pipeline chain testbenches: the acceptance tests of the
//! hierarchical-netlist refactor.
//!
//! * the 13-bit winner's 4-3-2 chain (all front-end stages, ≥ 100 MNA
//!   unknowns) solves DC and extracts its end-to-end transfer function
//!   through the existing workspaces, with the sparse engine
//!   auto-selected and the report bit-identical under the dense override;
//! * a decoupled chain's per-stage DC operating points and transfer
//!   functions match standalone single-stage testbenches (inter-stage
//!   loading zeroed ⇒ stages are independent);
//! * the chain's small-signal gain agrees with the behavioural stage
//!   model's interstage-gain product;
//! * Markowitz fill on the chain pattern stays near-linear and the
//!   recalibrated `prefer_sparse` keeps the chain on the sparse path;
//! * the annealing-tail warm start (quantized acceptance costs) leaves
//!   synthesis trajectories bit-identical to the cold path on the
//!   telescopic bench.

use pipelined_adc::behav::stage::StageModel;
use pipelined_adc::mdac::netlist::{build_pipeline, MdacStageConfig, OtaSizing, PipelineOptions};
use pipelined_adc::mdac::opamp::{TelescopicParams, TwoStageParams};
use pipelined_adc::mdac::power::{design_chain, PowerModelParams};
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::numerics::sparse::{prefer_sparse, CsrPattern, Symbolic};
use pipelined_adc::sfg::nettf::{extract_tf, NetTfOptions};
use pipelined_adc::spice::dc::dc_operating_point;
use pipelined_adc::spice::linearize::{SmallSignal, SolverChoice};
use pipelined_adc::synth::chain::{ChainEvaluator, ChainOptions, ChainReport};
use pipelined_adc::synth::hybrid::BenchSetup;

/// 4-3-2 stage configurations for the 13-bit spec with nominal OTA
/// sizings (two-stage for the high-gain first stage, telescopic behind).
fn chain_432(spec: &AdcSpec, params: &PowerModelParams) -> Vec<MdacStageConfig> {
    let designs = design_chain(spec, &[4, 3, 2], params);
    designs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let ota = if i == 0 {
                OtaSizing::TwoStage(TwoStageParams::nominal())
            } else {
                OtaSizing::Telescopic(TelescopicParams::nominal())
            };
            MdacStageConfig::from_design(d, ota)
        })
        .collect()
}

fn chain_options(tb: &pipelined_adc::mdac::netlist::PipelineTestbench) -> ChainOptions {
    ChainOptions {
        dc: tb.dc_options(),
        ..Default::default()
    }
}

fn bench_of(tb: &pipelined_adc::mdac::netlist::PipelineTestbench) -> BenchSetup {
    BenchSetup::new(
        tb.circuit.clone(),
        tb.output,
        tb.supply.clone(),
        tb.devices.clone(),
    )
}

/// Acceptance: the full 13-bit 4-3-2 chain at MNA dim ≥ 100 solves DC,
/// extracts its end-to-end TF, auto-selects the sparse engines, and
/// reports bit-identically under the dense `SolverChoice` override.
#[test]
fn chain_432_solves_at_hundred_plus_unknowns_sparse_and_dense() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let tb = build_pipeline(
        &spec.process,
        &chain_432(&spec, &params),
        &PipelineOptions::default(),
    )
    .unwrap();
    assert!(tb.mna_dim() >= 100, "MNA dim {}", tb.mna_dim());
    assert_eq!(tb.expected_gain, 64.0);

    let bench = bench_of(&tb);
    let mut auto = ChainEvaluator::new(chain_options(&tb));
    let report = auto.evaluate(&bench).unwrap();
    assert!(report.dc_sparse, "sparse DC must be auto-selected");
    assert!(report.tf_sparse, "sparse TF must be auto-selected");
    assert_eq!(report.mna_dim, tb.mna_dim());
    // End-to-end gain within a few percent of ∏G = 64 (finite loop gain).
    assert!(
        (report.gain - 64.0).abs() / 64.0 < 0.10,
        "chain gain {}",
        report.gain
    );
    // The extracted rational TF agrees with the direct probe.
    assert!(
        (report.tf_gain - report.gain).abs() / report.gain < 0.02,
        "tf {} vs probe {}",
        report.tf_gain,
        report.gain
    );
    assert!(report.bw_3db > 0.0 && report.settle_tau > 0.0);
    assert!(
        report.power > 1e-3 && report.power < 1.0,
        "{}",
        report.power
    );

    // Dense override: bit-identical quantized report.
    let mut dense = ChainEvaluator::with_solver(SolverChoice::Dense, chain_options(&tb));
    let rd = dense.evaluate(&bench).unwrap();
    assert!(!rd.dc_sparse && !rd.tf_sparse);
    assert_eq!(
        ChainReport {
            dc_sparse: rd.dc_sparse,
            tf_sparse: rd.tf_sparse,
            ..report.clone()
        },
        rd,
        "chain verify numbers must not depend on the solver engine"
    );
}

/// Acceptance: the 13-bit winner's 4-3-2 chain runs four full φ1/φ2
/// periods through the sparse adaptive transient engine, every stage
/// settles to ½ LSB by the end of its amplification phase, the adaptive
/// stepper needs ≥ 5× fewer steps than the fixed-step oracle at the
/// adaptive run's own minimum dt, and the dense engine reproduces the
/// quantized report bit-identically.
///
/// The sign-off chain carries telescopic OTAs throughout: the nominal
/// two-stage front OTA of [`chain_432`] passes every small-signal check
/// but cannot settle the 0.94 pF first-stage array inside the 11.5 ns
/// amplification window — a deficit only the clocked transient leg can
/// see, asserted at the end as the negative control.
#[test]
fn chain_432_settles_under_real_clock_phases() {
    use pipelined_adc::synth::tran_chain::{TranChainEvaluator, TranChainOptions};
    use pipelined_adc::topopt::verify::build_tran_setup;

    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let designs = design_chain(&spec, &[4, 3, 2], &params);
    let gains: Vec<f64> = designs.iter().map(|d| d.spec.gain).collect();
    let telescopic: Vec<MdacStageConfig> = designs
        .iter()
        .map(|d| {
            MdacStageConfig::from_design(d, OtaSizing::Telescopic(TelescopicParams::nominal()))
        })
        .collect();
    let tb = build_pipeline(&spec.process, &telescopic, &PipelineOptions::default()).unwrap();
    let mut setup = build_tran_setup(&spec, &tb, gains.clone());
    let opts = TranChainOptions::default();
    assert!(opts.periods >= 4, "sign-off must cover ≥ 4 full periods");

    let mut ev = TranChainEvaluator::new(opts.clone());
    let report = ev.evaluate(&mut setup).unwrap();
    assert!(report.sparse, "chain must auto-select the CSR engine");
    assert_eq!(report.stages.len(), 3);
    assert!(report.all_settled, "{report:#?}");
    for (k, s) in report.stages.iter().enumerate() {
        assert!(s.settled, "stage {k} missed ½ LSB: {s:#?}");
        // Inter-stage loading costs the front stages a few percent of
        // their ideal residue gains (visible only at the circuit level);
        // a tenth is the sign-off bound.
        assert!(
            (s.residue_gain - s.ideal_gain).abs() / s.ideal_gain < 0.10,
            "stage {k}: residue gain {} vs ideal {}",
            s.residue_gain,
            s.ideal_gain
        );
    }
    // The lightly loaded back stage transfers its residue accurately.
    let back = report.stages.last().unwrap();
    assert!(
        (back.residue_gain - back.ideal_gain).abs() / back.ideal_gain < 0.01,
        "back stage: {} vs {}",
        back.residue_gain,
        back.ideal_gain
    );

    // Dense override: every quantized stage metric is reproduced
    // bit-identically (the solver-agnostic report contract; raw step and
    // iteration counters may differ by a razor-edge LTE decision on this
    // MOSFET chain — the macromodel bit-identity test in `adc-synth` pins
    // them too).
    let mut dense = TranChainEvaluator::with_solver(SolverChoice::Dense, opts.clone());
    let rd = dense.evaluate(&mut setup).unwrap();
    assert!(!rd.sparse);
    assert_eq!(
        report.stages, rd.stages,
        "transient sign-off metrics must not depend on the solver engine"
    );
    assert_eq!(report.all_settled, rd.all_settled);
    assert_eq!(report.min_dt, rd.min_dt);

    // Fixed-step oracle at the adaptive run's own minimum dt: same
    // accuracy (residue gains agree within the LTE tolerance), ≥ 5× the
    // step count.
    let rf = ev.evaluate_fixed(&mut setup, report.min_dt).unwrap();
    for (k, (a, f)) in report.stages.iter().zip(rf.stages.iter()).enumerate() {
        assert!(
            (a.residue_gain - f.residue_gain).abs() / f.residue_gain < 0.02,
            "stage {k}: adaptive gain {} vs fixed {}",
            a.residue_gain,
            f.residue_gain
        );
    }
    assert!(
        rf.accepted >= 5 * report.accepted,
        "adaptive {} steps vs fixed {} — expected ≥ 5× savings",
        report.accepted,
        rf.accepted
    );

    // Negative control: the standard fixture's nominal two-stage front
    // OTA passes the small-signal chain checks (see the tests above) but
    // must be caught here — it cannot settle the first-stage array to
    // ½ LSB inside the amplification window.
    let tb2 = build_pipeline(
        &spec.process,
        &chain_432(&spec, &params),
        &PipelineOptions::default(),
    )
    .unwrap();
    let mut setup2 = build_tran_setup(&spec, &tb2, gains);
    let slow = TranChainEvaluator::new(opts).evaluate(&mut setup2).unwrap();
    assert!(
        !slow.stages[0].settled && !slow.all_settled,
        "the slow two-stage front OTA must fail transient sign-off: {:#?}",
        slow.stages[0]
    );
}

/// Property: with inter-stage loading zeroed (every stage driven by its
/// own source, chain edges cut), each stage of the flattened chain matches
/// a standalone single-stage testbench — DC operating point and per-stage
/// transfer function.
#[test]
fn decoupled_chain_matches_standalone_stages() {
    let spec = AdcSpec::date05(10);
    let params = PowerModelParams::calibrated();
    let designs = design_chain(&spec, &[3, 2], &params);
    let configs: Vec<MdacStageConfig> = designs
        .iter()
        .map(|d| {
            MdacStageConfig::from_design(d, OtaSizing::Telescopic(TelescopicParams::nominal()))
        })
        .collect();
    let opts = PipelineOptions {
        with_sub_adc: false,
        decouple: true,
        ..Default::default()
    };
    let tb = build_pipeline(&spec.process, &configs, &opts).unwrap();
    let op = dc_operating_point(&tb.circuit, &tb.dc_options()).unwrap();

    for (k, cfg) in configs.iter().enumerate() {
        let alone = build_pipeline(
            &spec.process,
            std::slice::from_ref(cfg),
            &PipelineOptions {
                with_sub_adc: false,
                decouple: true,
                ..Default::default()
            },
        )
        .unwrap();
        let op_a = dc_operating_point(&alone.circuit, &alone.dc_options()).unwrap();
        // DC: every mapped internal node of stage k agrees with the
        // standalone stage.
        for local in ["sum", "fb", "vb", "lp", "ota.ncasc", "ota.npcasc"] {
            let n_chain = tb.stages[k].node(local).unwrap();
            let n_alone = alone.stages[0].node(local).unwrap();
            let (vc, va) = (op.voltage(n_chain), op_a.voltage(n_alone));
            assert!(
                (vc - va).abs() < 1e-6,
                "stage {k} node {local}: chain {vc} vs standalone {va}"
            );
        }
        let (oc, oa) = (op.voltage(tb.stage_outputs[k]), op_a.voltage(alone.output));
        assert!((oc - oa).abs() < 1e-6, "stage {k} out: {oc} vs {oa}");

        // TF to this stage's output: only its own stimulus reaches it, so
        // the chain extraction equals the standalone one.
        let tf_c = extract_tf(
            &tb.circuit,
            &op,
            tb.stage_outputs[k],
            &NetTfOptions::default(),
        )
        .unwrap()
        .cancel_common_roots(1e-5);
        let tf_a = extract_tf(
            &alone.circuit,
            &op_a,
            alone.output,
            &NetTfOptions::default(),
        )
        .unwrap()
        .cancel_common_roots(1e-5);
        for f in [1e5, 1e6, 1e7] {
            let (mc, ma) = (tf_c.magnitude(f), tf_a.magnitude(f));
            assert!(
                (mc - ma).abs() / ma.max(1e-12) < 1e-4,
                "stage {k} @ {f} Hz: chain {mc} vs standalone {ma}"
            );
        }
    }
}

/// Cross-check against the behavioural layer: the chain's small-signal
/// gain magnitude matches the product of the behavioural stage models'
/// interstage gains within the finite-loop-gain tolerance.
#[test]
fn chain_gain_matches_behavioural_stage_model() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let tb = build_pipeline(
        &spec.process,
        &chain_432(&spec, &params),
        &PipelineOptions::default(),
    )
    .unwrap();
    let mut ev = ChainEvaluator::new(chain_options(&tb));
    let report = ev.evaluate(&bench_of(&tb)).unwrap();
    let behav_gain: f64 = [4u32, 3, 2]
        .iter()
        .map(|&m| StageModel::ideal(m).gain())
        .product();
    assert_eq!(behav_gain, 64.0);
    assert!(
        (report.gain - behav_gain).abs() / behav_gain < 0.10,
        "chain {} vs behavioural {}",
        report.gain,
        behav_gain
    );
}

/// The chain's small-signal pattern is ladder-shaped: Markowitz fill stays
/// near-linear in the dimension and the recalibrated `prefer_sparse`
/// keeps it on the sparse path.
#[test]
fn chain_pattern_fill_is_near_linear() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let tb = build_pipeline(
        &spec.process,
        &chain_432(&spec, &params),
        &PipelineOptions::default(),
    )
    .unwrap();
    let op = dc_operating_point(&tb.circuit, &tb.dc_options()).unwrap();
    let mut ss = SmallSignal::new();
    ss.bind(&tb.circuit, &op, 0.0).unwrap();
    let dim = ss.dim();
    let entries: Vec<(usize, usize)> = ss
        .base
        .iter()
        .chain(ss.cap_entries.iter())
        .map(|&(r, c, _)| (r, c))
        .collect();
    let (pattern, _) = CsrPattern::from_entries(dim, &entries);
    assert!(
        prefer_sparse(dim, pattern.nnz()),
        "dim {dim}, nnz {} must stay sparse",
        pattern.nnz()
    );
    let sym = Symbolic::analyze(&pattern).unwrap();
    assert!(
        sym.factor_nnz() <= 10 * dim,
        "factor nnz {} not near-linear at dim {dim}",
        sym.factor_nnz()
    );
}

/// Satellite property: enabling the annealing-tail warm start (quantized
/// acceptance costs) must leave the synthesis trajectory bit-identical to
/// the cold path on the telescopic bench.
#[test]
fn warm_tail_trajectories_match_cold_on_telescopic_bench() {
    use pipelined_adc::mdac::opamp::{build_telescopic, TelescopicHandles};
    use pipelined_adc::spice::netlist::Circuit;
    use pipelined_adc::synth::anneal::{anneal, AnnealConfig};
    use pipelined_adc::synth::hybrid::{BenchTuner, HybridOptions, HybridOtaEvaluator};
    use pipelined_adc::synth::{Constraint, ConstraintKind, DesignSpace, DesignVar};
    use std::rc::Rc;

    let proc = spice_process();
    let build = move |x: &[f64]| {
        let tb = build_telescopic(&proc, &TelescopicParams::from_vec(x), 1e-12);
        let handles = TelescopicHandles::resolve(&tb.circuit).unwrap();
        let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
            handles.retune(ckt, &TelescopicParams::from_vec(x));
        });
        BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
    };
    let space = DesignSpace::new(
        TelescopicParams::bounds()
            .into_iter()
            .map(|b| {
                if b.log {
                    DesignVar::log(b.name, b.lo, b.hi)
                } else {
                    DesignVar::linear(b.name, b.lo, b.hi)
                }
            })
            .collect(),
    );
    let constraints = vec![
        Constraint::new("a0", ConstraintKind::AtLeast, 300.0),
        Constraint::new("pm", ConstraintKind::AtLeast, 45.0),
        Constraint::new("saturated", ConstraintKind::AtLeast, 1.0),
    ];
    let run = |warm_tail_frac: f64| {
        let evaluator = HybridOtaEvaluator::new(build.clone(), HybridOptions::default());
        let cfg = AnnealConfig {
            iterations: 120,
            seed: 17,
            warm_tail_frac,
            cost_quant_digits: Some(6),
            ..Default::default()
        };
        anneal(&space, &evaluator, &constraints, "power", &cfg, None)
    };
    let warm = run(0.4);
    let cold = run(0.0);
    assert_eq!(warm.best_u, cold.best_u, "trajectories diverged");
    assert_eq!(warm.evaluations, cold.evaluations);
    assert_eq!(warm.feasible, cold.feasible);
    assert_eq!(
        warm.history, cold.history,
        "quantized best-cost traces must be identical"
    );
}

fn spice_process() -> pipelined_adc::spice::process::Process {
    pipelined_adc::spice::process::Process::c025()
}
