//! Deterministic chaos suite: seeded fault injection into the guarded
//! candidate-set flow (`--features faults`).
//!
//! Contract under test: a single injected fault at any layer — synthesis,
//! executor, cache commit — produces either a **deterministic degraded
//! ranking** (the failed block is reported in [`SynthesisRun::failures`],
//! survivors are bit-identical across thread counts and to the serial
//! oracle) or a typed error, and never a process-level unwind. Zero-fault
//! guarded runs are bit-identical to the unguarded historical path.
#![cfg(feature = "faults")]

use pipelined_adc::mdac::power::PowerModelParams;
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::numerics::faults::{
    self, FaultAction, FaultPlan, FaultRule, SITE_CACHE_COMMIT, SITE_EXECUTOR_TASK,
    SITE_SYNTH_EXECUTE,
};
use pipelined_adc::synth::SynthConfig;
use pipelined_adc::topopt::cache::{BlockCache, CachePolicy};
use pipelined_adc::topopt::enumerate::enumerate_candidates;
use pipelined_adc::topopt::executor::{ExecutorOptions, FailureKind};
use pipelined_adc::topopt::flow::{
    run_flow, surviving_candidates, FlowOptions, FlowRequest, MdacBlock, SynthesisRun,
};
use std::sync::Mutex;

/// The fault registry is process-global; chaos tests take this lock so
/// concurrent test threads never see each other's plans.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn cfg() -> SynthConfig {
    SynthConfig {
        iterations: 10,
        nm_iterations: 2,
        seed: 9,
        ..Default::default()
    }
}

/// The 13-bit guarded candidate-set run (no cache) under the given plan.
fn run_13bit(plan: Option<FaultPlan>, threads: Option<usize>) -> SynthesisRun {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let cands = enumerate_candidates(13, 7);
    match plan {
        Some(p) => faults::install(p),
        None => faults::clear(),
    }
    let exec = match threads {
        Some(t) => ExecutorOptions::with_threads(t),
        None => ExecutorOptions::default(),
    };
    let run = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &cfg())
            .with_executor(exec)
            .with_options(FlowOptions::default()),
        None,
    );
    faults::clear();
    run
}

fn assert_blocks_bit_identical(label: &str, a: &[MdacBlock], b: &[MdacBlock]) {
    assert_eq!(a.len(), b.len(), "{label}: block count");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.key, y.key, "{label}");
        assert_eq!(x.result.best_x, y.result.best_x, "{label}: key {:?}", x.key);
        assert_eq!(
            x.result.best_cost, y.result.best_cost,
            "{label}: key {:?}",
            x.key
        );
        assert_eq!(
            x.result.evaluations, y.result.evaluations,
            "{label}: key {:?}",
            x.key
        );
    }
}

/// Kills every rung of the ladder for block (2, 8): the block is reported
/// as a casualty, survivors are bit-identical across the serial oracle and
/// 1/2/4-thread executors, and candidates needing the block drop out of
/// the ranking.
#[test]
fn persistent_synth_fault_degrades_ranking_deterministically() {
    let _g = lock();
    let kill_all_rungs = || FaultPlan {
        seed: 1,
        rules: (0..3)
            .map(|r| FaultRule::first(SITE_SYNTH_EXECUTE, &format!("m2a8r{r}"), FaultAction::Panic))
            .collect(),
    };
    let serial = {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(13, 7);
        faults::install(kill_all_rungs());
        let run = run_flow(
            &FlowRequest::new(&spec, &cands, &params, &cfg())
                .serial()
                .with_options(FlowOptions::default()),
            None,
        );
        faults::clear();
        run
    };
    assert_eq!(serial.failures.len(), 1, "exactly one casualty");
    assert_eq!(serial.failures[0].key, (2, 8));
    assert_eq!(serial.failures[0].failure.kind, FailureKind::Panic);
    assert_eq!(serial.failures[0].failure.attempts, 3, "full ladder spent");
    assert_eq!(serial.stats.failed, 1);
    assert!(serial.blocks.iter().all(|b| b.key != (2, 8)));
    for threads in [1, 2, 4] {
        let parallel = run_13bit(Some(kill_all_rungs()), Some(threads));
        assert_blocks_bit_identical(
            &format!("threads={threads}"),
            &serial.blocks,
            &parallel.blocks,
        );
        assert_eq!(serial.stats, parallel.stats, "threads={threads}");
        assert_eq!(serial.failures.len(), parallel.failures.len());
        assert_eq!(serial.failures[0].key, parallel.failures[0].key);
    }
    // Degraded ranking: candidates that need (2, 8) are not rankable.
    let spec = AdcSpec::date05(13);
    let cands = enumerate_candidates(13, 7);
    let survivors = surviving_candidates(&spec, &cands, &serial);
    assert!(survivors.len() < cands.len(), "some candidates must drop");
    assert!(!survivors.is_empty(), "some candidates must survive");
}

/// A timeout fault is typed and final: the ladder does not retry it.
#[test]
fn timeout_fault_is_typed_and_final() {
    let _g = lock();
    let plan = FaultPlan::single(
        2,
        FaultRule::first(SITE_SYNTH_EXECUTE, "m2a8r0", FaultAction::Timeout),
    );
    let run = run_13bit(Some(plan), Some(2));
    assert_eq!(run.failures.len(), 1);
    let f = &run.failures[0].failure;
    assert_eq!(f.kind, FailureKind::Timeout);
    assert_eq!(f.attempts, 1, "timeouts must not ride the retry ladder");
    assert!(run.clone().into_result().is_err());
}

/// A fault that hits only the first attempt is healed by the recovery
/// ladder: no casualties, the recovery is counted, and every block the
/// fault did not touch is bit-identical to the zero-fault run.
#[test]
fn recovery_ladder_rescues_single_attempt_fault() {
    let _g = lock();
    let clean = run_13bit(None, Some(2));
    let plan = FaultPlan::single(
        3,
        FaultRule::first(SITE_SYNTH_EXECUTE, "m2a8r0", FaultAction::Panic),
    );
    let run = run_13bit(Some(plan), Some(2));
    assert!(run.failures.is_empty(), "{:?}", run.failures);
    assert_eq!(run.stats.recovered, 1);
    assert_eq!(run.stats.attempts, run.stats.blocks + 1);
    assert_eq!(run.blocks.len(), clean.blocks.len());
    for (a, b) in clean.blocks.iter().zip(run.blocks.iter()) {
        assert_eq!(a.key, b.key);
        if a.key != (2, 8) && !b.retargeted {
            // Cold blocks away from the fault are untouched; retargeted
            // blocks may chain off the recovered result.
            assert_eq!(a.result.best_x, b.result.best_x, "key {:?}", a.key);
        }
    }
}

/// An executor-level fault (before the block runner even starts) is
/// isolated to its task and pinned deterministically by task scope.
#[test]
fn executor_fault_is_isolated_to_one_task() {
    let _g = lock();
    let plan = FaultPlan::single(
        4,
        FaultRule::first(SITE_EXECUTOR_TASK, "task0", FaultAction::Panic),
    );
    let run = run_13bit(Some(plan), Some(4));
    assert_eq!(run.failures.len(), 1);
    assert_eq!(run.failures[0].failure.kind, FailureKind::Panic);
    assert_eq!(run.stats.failed, 1);
    assert_eq!(run.blocks.len() + 1, run.stats.blocks);
}

/// A corrupted cache commit is detected by the integrity stamp on the next
/// lookup: the entry is dropped, the block re-synthesizes, and the replay
/// stays bit-identical to a cache-cold run.
#[test]
fn corrupted_cache_commit_is_rejected_on_replay() {
    let _g = lock();
    let spec = AdcSpec::date05(10);
    let params = PowerModelParams::calibrated();
    let cands = enumerate_candidates(10, 7);
    let exec = ExecutorOptions::default();
    let flow = FlowOptions::default();
    let mut cache = BlockCache::new(CachePolicy::Reproducible);
    faults::install(FaultPlan::single(
        5,
        FaultRule::anywhere(SITE_CACHE_COMMIT, FaultAction::Corrupt),
    ));
    let first = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &cfg())
            .with_executor(exec.clone())
            .with_options(flow),
        Some(&mut cache),
    );
    faults::clear();
    assert!(first.failures.is_empty());
    let replay = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &cfg())
            .with_executor(exec.clone())
            .with_options(flow),
        Some(&mut cache),
    );
    assert_eq!(cache.stats().corrupt_dropped, 1, "{:?}", cache.stats());
    assert_eq!(
        replay.stats.cache_hits,
        replay.stats.blocks - 1,
        "all but the corrupted block replay from cache: {:?}",
        replay.stats
    );
    assert_blocks_bit_identical("corrupt replay", &first.blocks, &replay.blocks);
}

/// Satellite 3: after a run where a block *recovered* off-plan (and was
/// therefore not committed), a reproducible-cache replay is
/// provenance-identical to a cache-cold run — tainted results never leak
/// into later runs.
#[test]
fn reproducible_replay_after_recovered_failure_matches_cache_cold() {
    let _g = lock();
    let spec = AdcSpec::date05(10);
    let params = PowerModelParams::calibrated();
    let cands = enumerate_candidates(10, 7);
    let exec = ExecutorOptions::default();
    let flow = FlowOptions::default();
    // Kill attempt 0 of the cheapest 10-bit block so it recovers off-plan.
    let key = {
        let probe = run_flow(
            &FlowRequest::new(&spec, &cands, &params, &cfg())
                .with_executor(exec.clone())
                .with_options(flow),
            None,
        );
        probe.blocks[0].key
    };
    let mut cache = BlockCache::new(CachePolicy::Reproducible);
    faults::install(FaultPlan::single(
        6,
        FaultRule::first(
            SITE_SYNTH_EXECUTE,
            &format!("m{}a{}r0", key.0, key.1),
            FaultAction::Panic,
        ),
    ));
    let faulted = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &cfg())
            .with_executor(exec.clone())
            .with_options(flow),
        Some(&mut cache),
    );
    faults::clear();
    assert_eq!(faulted.stats.recovered, 1, "{:?}", faulted.stats);
    // The recovered block (and anything chained off it) was not committed.
    assert!(cache.len() < faulted.blocks.len());
    // Replay against the partially warmed cache ≡ cache-cold run.
    let replay = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &cfg())
            .with_executor(exec.clone())
            .with_options(flow),
        Some(&mut cache),
    );
    let cold = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &cfg())
            .with_executor(exec.clone())
            .with_options(flow),
        None,
    );
    assert!(replay.stats.cache_hits > 0, "{:?}", replay.stats);
    assert_blocks_bit_identical("replay vs cold", &cold.blocks, &replay.blocks);
    assert!(replay.failures.is_empty());
}

/// Zero-fault guarded runs carry no overhead bookkeeping surprises: no
/// casualties, one attempt per block, and bit-identical blocks between the
/// serial oracle and the guarded executor with the faults feature enabled.
#[test]
fn zero_fault_guarded_runs_are_bit_identical() {
    let _g = lock();
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let cands = enumerate_candidates(13, 7);
    faults::clear();
    let serial = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &cfg())
            .serial()
            .with_options(FlowOptions::default()),
        None,
    );
    assert!(serial.failures.is_empty());
    assert_eq!(serial.stats.failed, 0);
    assert_eq!(serial.stats.attempts, serial.stats.blocks);
    for threads in [2, 4] {
        let parallel = run_13bit(None, Some(threads));
        assert_blocks_bit_identical(
            &format!("zero-fault threads={threads}"),
            &serial.blocks,
            &parallel.blocks,
        );
        assert_eq!(serial.stats, parallel.stats);
    }
}
