//! Integration tests for §2 of the paper: candidate enumeration.

use pipelined_adc::topopt::enumerate::{enumerate_candidates, Candidate};
use proptest::prelude::*;

#[test]
fn paper_counts() {
    // "These reduce the design space complexity to a manageable enumerated
    // set of seven different candidates" (13-bit case).
    assert_eq!(enumerate_candidates(13, 7).len(), 7);
    // Implied counts at the other evaluated resolutions.
    assert_eq!(enumerate_candidates(12, 7).len(), 5);
    assert_eq!(enumerate_candidates(11, 7).len(), 4);
    assert_eq!(enumerate_candidates(10, 7).len(), 3);
}

#[test]
fn thirteen_bit_set_is_exactly_the_papers() {
    let mut names: Vec<String> = enumerate_candidates(13, 7)
        .iter()
        .map(Candidate::to_string)
        .collect();
    names.sort();
    let mut want = vec![
        "2-2-2-2-2-2",
        "3-2-2-2-2",
        "3-3-3",
        "4-3-2",
        "4-2-2-2",
        "3-3-2-2",
        "4-4",
    ];
    want.sort_unstable();
    assert_eq!(names, want);
}

#[test]
fn paper_constraints_hold_for_every_resolution() {
    // Exhaustive check of the §2 constraint set over the rule-table range:
    // Σ(mᵢ−1) = K − backend, mᵢ ∈ {2,3,4}, non-increasing stage resolutions,
    // and the headline count of exactly 7 candidates at K = 13.
    const BACKEND: u32 = 7;
    for k in 8..=14u32 {
        let cands = enumerate_candidates(k, BACKEND);
        assert!(!cands.is_empty(), "K = {k}: no candidates");
        for c in &cands {
            let sum: u32 = c.front_bits().iter().map(|&m| m - 1).sum();
            assert_eq!(sum, k - BACKEND, "K = {k}, candidate {c}");
            assert!(
                c.front_bits().iter().all(|&m| (2..=4).contains(&m)),
                "K = {k}, candidate {c}: stage bits outside 2..=4"
            );
            assert!(
                c.front_bits().windows(2).all(|w| w[0] >= w[1]),
                "K = {k}, candidate {c}: stage resolutions increase"
            );
        }
        if k == 13 {
            assert_eq!(cands.len(), 7, "13-bit candidate count");
        }
    }
}

proptest! {
    /// Every enumerated candidate satisfies the paper's constraint set and
    /// resolves exactly the front-end bits.
    #[test]
    fn candidates_satisfy_invariants(k in 8u32..=18) {
        for c in enumerate_candidates(k, 7) {
            prop_assert_eq!(c.effective_bits(), k - 7);
            prop_assert!(c.front_bits().iter().all(|&m| (2..=4).contains(&m)));
            for w in c.front_bits().windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }

    /// No two candidates are equal (the enumeration never duplicates).
    #[test]
    fn candidates_are_distinct(k in 8u32..=18) {
        let cands = enumerate_candidates(k, 7);
        let set: std::collections::HashSet<_> =
            cands.iter().map(|c| c.front_bits().to_vec()).collect();
        prop_assert_eq!(set.len(), cands.len());
    }

    /// Candidate count equals the number of non-increasing compositions,
    /// which for parts ≤ 3 grows with resolution.
    #[test]
    fn count_is_monotone_in_resolution(k in 9u32..=17) {
        prop_assert!(enumerate_candidates(k + 1, 7).len() >= enumerate_candidates(k, 7).len());
    }
}
