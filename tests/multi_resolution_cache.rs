//! Cross-resolution synthesis-cache properties and executor determinism.
//!
//! The dependency-driven executor and the persistent [`BlockCache`] must
//! never change *what* gets synthesized, only *when* (executor) and *how
//! often* (cache, under the reproducible policy). These tests pin the
//! contracts end to end over two consecutive resolutions (10 → 11 bits):
//!
//! * cached, cache-cold and serial-oracle runs are **bit-identical** under
//!   [`CachePolicy::Reproducible`], with a cross-resolution hit rate > 0;
//! * the aggressive policy stays deterministic (serial ≡ parallel given the
//!   same cache state) and reuses strictly more;
//! * executor results are identical for 1, 2 and N worker threads.

use pipelined_adc::mdac::power::PowerModelParams;
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::synth::SynthConfig;
use pipelined_adc::topopt::cache::{BlockCache, CachePolicy};
use pipelined_adc::topopt::enumerate::enumerate_candidates;
use pipelined_adc::topopt::executor::ExecutorOptions;
use pipelined_adc::topopt::flow::{run_flow, FlowRequest, MdacBlock};

const RESOLUTIONS: [u32; 2] = [10, 11];

fn cfg() -> SynthConfig {
    SynthConfig {
        iterations: 10,
        nm_iterations: 2,
        seed: 9,
        ..Default::default()
    }
}

fn assert_blocks_bit_identical(label: &str, a: &[MdacBlock], b: &[MdacBlock]) {
    assert_eq!(a.len(), b.len(), "{label}: block count");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.key, y.key, "{label}");
        assert_eq!(x.retargeted, y.retargeted, "{label}: key {:?}", x.key);
        assert_eq!(x.result.best_x, y.result.best_x, "{label}: key {:?}", x.key);
        assert_eq!(x.result.best_u, y.result.best_u, "{label}: key {:?}", x.key);
        assert_eq!(
            x.result.best_cost, y.result.best_cost,
            "{label}: key {:?}",
            x.key
        );
        assert_eq!(
            x.result.best_perf, y.result.best_perf,
            "{label}: key {:?}",
            x.key
        );
        assert_eq!(
            x.result.evaluations, y.result.evaluations,
            "{label}: key {:?}",
            x.key
        );
        assert_eq!(
            x.result.feasible, y.result.feasible,
            "{label}: key {:?}",
            x.key
        );
    }
}

/// Runs the two-resolution flow with an optional shared cache and the given
/// executor; returns per-resolution blocks and hit counts.
fn run_resolution_pair(
    cache: Option<&mut BlockCache>,
    exec: &ExecutorOptions,
    serial: bool,
) -> Vec<(Vec<MdacBlock>, usize)> {
    let params = PowerModelParams::calibrated();
    let config = cfg();
    let mut cache = cache;
    RESOLUTIONS
        .iter()
        .map(|&k| {
            let spec = AdcSpec::date05(k);
            let cands = enumerate_candidates(k, 7);
            let req = if serial {
                FlowRequest::new(&spec, &cands, &params, &config).serial()
            } else {
                FlowRequest::new(&spec, &cands, &params, &config).with_executor(exec.clone())
            };
            let run = run_flow(&req, cache.as_deref_mut());
            (run.blocks, run.stats.cache_hits)
        })
        .collect()
}

/// The headline property: cached, cache-cold and serial-oracle synthesis
/// produce bit-identical candidate sets (and therefore identical optimizer
/// trajectories — `best_u`, costs and evaluation counts all match) across
/// two consecutive resolutions, and the reproducible cache still hits
/// across the resolution boundary.
#[test]
fn cached_cache_cold_and_serial_oracle_are_bit_identical() {
    let exec = ExecutorOptions::default();
    // Cache-cold baseline (no cache at all).
    let cold = run_resolution_pair(None, &exec, false);
    // Reproducible cache shared across both resolutions, parallel executor.
    let mut cache = BlockCache::new(CachePolicy::Reproducible);
    let cached = run_resolution_pair(Some(&mut cache), &exec, false);
    // Serial oracle with its own cache.
    let mut oracle_cache = BlockCache::new(CachePolicy::Reproducible);
    let oracle = run_resolution_pair(Some(&mut oracle_cache), &exec, true);

    for ((k, (a, _)), ((b, b_hits), (c, _))) in RESOLUTIONS
        .iter()
        .zip(cold.iter())
        .zip(cached.iter().zip(oracle.iter()))
    {
        assert_blocks_bit_identical(&format!("cold vs cached @ {k} bits"), a, b);
        assert_blocks_bit_identical(&format!("cached vs serial @ {k} bits"), b, c);
        let _ = b_hits;
    }
    // Cross-resolution reuse actually happened: the second resolution hit
    // at least the shared (2, 8) telescopic block.
    assert!(
        cached[1].1 > 0,
        "expected provenance-exact hits at 11 bits, stats: {:?}",
        cache.stats()
    );
    assert_eq!(cached[0].1, 0, "first resolution has nothing to hit");
}

/// The aggressive policy reuses strictly more than the reproducible one and
/// stays deterministic: serial and parallel executions over identically
/// warmed caches agree bit for bit.
#[test]
fn aggressive_cache_is_deterministic_and_reuses_more() {
    let exec = ExecutorOptions::default();
    let mut repro = BlockCache::new(CachePolicy::Reproducible);
    let repro_runs = run_resolution_pair(Some(&mut repro), &exec, false);

    let mut parallel_cache = BlockCache::new(CachePolicy::Aggressive);
    let parallel = run_resolution_pair(Some(&mut parallel_cache), &exec, false);
    let mut serial_cache = BlockCache::new(CachePolicy::Aggressive);
    let serial = run_resolution_pair(Some(&mut serial_cache), &exec, true);

    for (k, ((a, a_hits), (b, b_hits))) in
        RESOLUTIONS.iter().zip(parallel.iter().zip(serial.iter()))
    {
        assert_blocks_bit_identical(&format!("aggressive serial vs parallel @ {k} bits"), a, b);
        assert_eq!(a_hits, b_hits);
    }
    assert!(
        parallel[1].1 >= repro_runs[1].1,
        "aggressive ({}) must reuse at least as much as reproducible ({})",
        parallel[1].1,
        repro_runs[1].1
    );
    // And it eliminates every cold start at the second resolution: blocks
    // either hit exactly or warm-start from a cached/in-set neighbour.
    assert!(
        parallel_cache.stats().near_seeds > 0,
        "expected near-hit warm seeds, stats: {:?}",
        parallel_cache.stats()
    );
}

/// Executor determinism stress: the same candidate set synthesized with 1,
/// 2 and N worker threads yields bit-identical block lists.
#[test]
fn executor_results_identical_across_thread_counts() {
    let params = PowerModelParams::calibrated();
    let config = cfg();
    let spec = AdcSpec::date05(11);
    let cands = enumerate_candidates(11, 7);
    let baseline = run_flow(
        &FlowRequest::new(&spec, &cands, &params, &config)
            .with_executor(ExecutorOptions::with_threads(1)),
        None,
    );
    for threads in [2, 4, 8] {
        let run = run_flow(
            &FlowRequest::new(&spec, &cands, &params, &config)
                .with_executor(ExecutorOptions::with_threads(threads)),
            None,
        );
        assert_blocks_bit_identical(&format!("threads {threads}"), &baseline.blocks, &run.blocks);
        assert_eq!(baseline.stats, run.stats, "threads {threads}");
    }
}
