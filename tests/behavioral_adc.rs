//! Behavioural-model integration tests: digital correction, redundancy and
//! reconstruction invariants across arbitrary enumerated topologies.

use pipelined_adc::behav::pipeline::{FlashBackend, PipelineAdc};
use pipelined_adc::behav::stage::{StageModel, StageNonideality};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any valid front-end configuration, the ideal pipeline
    /// reconstructs every interior input to within one LSB.
    #[test]
    fn ideal_reconstruction_within_one_lsb(
        bits in proptest::collection::vec(2u32..=4, 1..=4),
        backend in 3u32..=7,
        v in -0.9f64..0.9,
    ) {
        let adc = PipelineAdc::ideal(&bits, backend);
        let k = adc.resolution_bits();
        let lsb = 2.0 / (1u64 << k) as f64;
        let mut rng = StdRng::seed_from_u64(1);
        let est = adc.convert(v, &mut rng);
        prop_assert!((est - v).abs() <= lsb, "v={v} est={est} K={k}");
    }

    /// Comparator offsets inside the redundancy range never cost more than
    /// a fraction of an LSB versus the ideal converter.
    #[test]
    fn redundancy_absorbs_offsets(
        m in 2u32..=4,
        seed in 0u64..1000,
        v in -0.85f64..0.85,
    ) {
        let budget = 0.6 / (1u64 << m) as f64; // 60 % of the redundancy range
        let n_thresh = (1usize << m) - 2;
        let offsets: Vec<f64> = (0..n_thresh)
            .map(|i| if (seed as usize + i) % 2 == 0 { budget } else { -budget })
            .collect();
        let stage = StageModel::with_nonideality(
            m,
            StageNonideality { comparator_offsets: offsets, ..Default::default() },
        );
        let adc = PipelineAdc::new(None, vec![stage], FlashBackend::ideal(6));
        let ideal = PipelineAdc::ideal(&[m], 6);
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = adc.convert(v, &mut r1);
        let b = ideal.convert(v, &mut r2);
        let lsb = 2.0 / (1u64 << ideal.resolution_bits()) as f64;
        prop_assert!((a - b).abs() <= lsb, "m={m} v={v}: {a} vs {b}");
    }

    /// The integer transfer function of an ideal converter is monotone.
    #[test]
    fn ideal_codes_monotone(bits in proptest::collection::vec(2u32..=3, 1..=3)) {
        let adc = PipelineAdc::ideal(&bits, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut last = 0u32;
        for i in 0..400 {
            let v = -0.99 + 1.98 * i as f64 / 399.0;
            let c = adc.convert_code(v, &mut rng);
            prop_assert!(c >= last);
            last = c;
        }
    }
}

#[test]
fn equivalent_topologies_have_identical_ideal_transfer() {
    // All seven 13-bit candidates implement the same ideal quantizer.
    let configs: [&[u32]; 7] = [
        &[2, 2, 2, 2, 2, 2],
        &[3, 2, 2, 2, 2],
        &[3, 3, 3],
        &[4, 3, 2],
        &[4, 2, 2, 2],
        &[3, 3, 2, 2],
        &[4, 4],
    ];
    let reference = PipelineAdc::ideal(configs[0], 7);
    let mut r_ref = StdRng::seed_from_u64(7);
    for cfg in &configs[1..] {
        let adc = PipelineAdc::ideal(cfg, 7);
        let mut r = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let _ = &mut r_ref;
        for i in 0..500 {
            let v = -0.95 + 1.9 * i as f64 / 499.0;
            let a = reference.convert(v, &mut r2);
            let b = adc.convert(v, &mut r);
            assert!(
                (a - b).abs() < 2.0 / 8192.0,
                "{cfg:?} differs at v={v}: {a} vs {b}"
            );
        }
    }
}
