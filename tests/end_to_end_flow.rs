//! End-to-end reproduction checks: the optimizer run over the paper's four
//! resolutions must recover the published optima, and the behavioural model
//! must confirm the chosen topology converts at resolution.

use pipelined_adc::behav::metrics::sine_test;
use pipelined_adc::behav::pipeline::PipelineAdc;
use pipelined_adc::mdac::power::PowerModelParams;
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::topopt::optimize::optimize_topology;
use pipelined_adc::topopt::rules::derive_rules;

#[test]
fn paper_optima_reproduce() {
    let params = PowerModelParams::calibrated();
    for (k, want) in [(10, "3-2"), (11, "4-2"), (12, "4-2-2"), (13, "4-3-2")] {
        let report = optimize_topology(&AdcSpec::date05(k), &params);
        assert_eq!(report.best().candidate.to_string(), want, "K = {k}");
    }
}

#[test]
fn figure3_bands_reproduce() {
    let rules = derive_rules(8..=13, &PowerModelParams::calibrated());
    assert_eq!(rules.band_for_max_bits(3), Some((9, 10)));
    assert_eq!(rules.band_for_max_bits(4), Some((11, 13)));
    assert_eq!(rules.row(8).unwrap().max_stage_bits, 2);
}

#[test]
fn optimal_topology_converts_at_resolution() {
    // The winner (4-3-2 + 7-bit backend) must actually deliver ~13 bits in
    // the behavioural simulator (ideal blocks → quantization-limited).
    let params = PowerModelParams::calibrated();
    let report = optimize_topology(&AdcSpec::date05(13), &params);
    let adc = PipelineAdc::ideal(report.best().candidate.front_bits(), 7);
    assert_eq!(adc.resolution_bits(), 13);
    let m = sine_test(&adc, 16384, 0.95, 99);
    assert!(m.enob > 12.6, "ENOB {}", m.enob);
}

#[test]
fn ranking_margins_are_resolved() {
    // The optimum must beat the runner-up by a nonzero margin (the model is
    // calibrated, not degenerate).
    let params = PowerModelParams::calibrated();
    for k in 10..=13 {
        let report = optimize_topology(&AdcSpec::date05(k), &params);
        let best = report.rows[0].total_power;
        let second = report.rows[1].total_power;
        assert!(second > best * 1.005, "K = {k}: {best} vs {second}");
    }
}

#[test]
fn every_candidate_yields_full_resolution_behaviourally() {
    // Topology choice trades power, not correctness: every enumerated
    // 13-bit candidate converts at 13 bits with ideal blocks.
    let report = optimize_topology(&AdcSpec::date05(13), &PowerModelParams::calibrated());
    for row in &report.rows {
        let adc = PipelineAdc::ideal(row.candidate.front_bits(), 7);
        assert_eq!(adc.resolution_bits(), 13, "{}", row.candidate);
        let m = sine_test(&adc, 4096, 0.9, 5);
        assert!(m.enob > 12.2, "{}: ENOB {}", row.candidate, m.enob);
    }
}
