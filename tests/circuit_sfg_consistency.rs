//! Cross-crate consistency: the three independent small-signal analyses —
//! AC sweep (adc-spice), symbolic DPI/SFG + Mason (adc-sfg), and
//! determinant-interpolation TF extraction (adc-sfg::nettf) — must agree on
//! the same linearized circuit.

use pipelined_adc::numerics::interp::logspace;
use pipelined_adc::sfg::dpi::DpiSfg;
use pipelined_adc::sfg::nettf::{extract_tf, NetTfOptions};
use pipelined_adc::spice::ac::ac_sweep;
use pipelined_adc::spice::dc::{dc_operating_point, DcOptions};
use pipelined_adc::spice::netlist::Circuit;
use pipelined_adc::spice::process::Process;
use proptest::prelude::*;

/// Builds a two-transistor cascode amplifier parameterized by device sizes.
fn cascode_amp(
    w1_um: f64,
    wc_um: f64,
    rd_kohm: f64,
) -> (Circuit, adc_spice::NodeId, adc_spice::NodeId) {
    let p = Process::c025();
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let g = c.node("g");
    let mid = c.node("mid");
    let d = c.node("d");
    c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
    c.add_vsource_wave("VG", g, Circuit::GROUND, 0.75.into(), 1.0);
    let vb = c.node("vb");
    c.add_vsource("VB", vb, Circuit::GROUND, 1.6);
    c.add_resistor("RD", vdd, d, rd_kohm * 1e3);
    c.add_capacitor("CL", d, Circuit::GROUND, 0.5e-12);
    c.add_mosfet(
        "M1",
        mid,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        p.nmos,
        w1_um * 1e-6,
        0.5e-6,
    );
    c.add_mosfet(
        "M2",
        d,
        vb,
        mid,
        Circuit::GROUND,
        p.nmos,
        wc_um * 1e-6,
        0.35e-6,
    );
    (c, g, d)
}

#[test]
fn three_analyses_agree_on_cascode() {
    let (ckt, input, output) = cascode_amp(8.0, 10.0, 20.0);
    let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();

    let dpi = DpiSfg::build(&ckt, &op, input).unwrap();
    let tf_mason = dpi.tf(output).unwrap();
    let tf_net = extract_tf(
        &ckt,
        &op,
        output,
        &NetTfOptions {
            radius: 1e9,
            trim_rel: 1e-10,
        },
    )
    .unwrap();

    let freqs = logspace(1e4, 10e9, 25);
    let sweep = ac_sweep(&ckt, &op, &freqs).unwrap();
    for (k, &f) in freqs.iter().enumerate() {
        let h_ac = sweep.voltage(output, k);
        let h_mason = tf_mason.eval_at_freq(f);
        let h_net = tf_net.eval_at_freq(f);
        let e1 = (h_mason - h_ac).norm() / h_ac.norm().max(1e-12);
        let e2 = (h_net - h_ac).norm() / h_ac.norm().max(1e-12);
        assert!(e1 < 1e-6, "Mason vs AC at {f} Hz: {e1}");
        assert!(e2 < 1e-3, "nettf vs AC at {f} Hz: {e2}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across random sizings, the DPI/SFG symbolic result matches the AC
    /// sweep at three spot frequencies.
    #[test]
    fn mason_matches_ac_for_random_sizings(
        w1 in 3.0f64..40.0,
        wc in 3.0f64..40.0,
        rd in 5.0f64..40.0,
    ) {
        let (ckt, input, output) = cascode_amp(w1, wc, rd);
        let op = match dc_operating_point(&ckt, &DcOptions::default()) {
            Ok(op) => op,
            Err(_) => return Ok(()), // pathological bias: skip
        };
        let dpi = DpiSfg::build(&ckt, &op, input).unwrap();
        let tf = dpi.tf(output).unwrap();
        let freqs = [1e5, 50e6, 2e9];
        let sweep = ac_sweep(&ckt, &op, &freqs).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let h_ac = sweep.voltage(output, k);
            let h = tf.eval_at_freq(f);
            let err = (h - h_ac).norm() / h_ac.norm().max(1e-12);
            prop_assert!(err < 1e-6, "f = {f}: {err}");
        }
    }
}
