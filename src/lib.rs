//! # pipelined-adc
//!
//! Umbrella crate for the DATE 2005 reproduction *"Designer-Driven Topology
//! Optimization for Pipelined Analog to Digital Converters"*. It re-exports
//! every workspace crate so the examples and integration tests can address
//! the whole system through one dependency.
//!
//! ```
//! use pipelined_adc::topopt::enumerate::enumerate_candidates;
//! let cands = enumerate_candidates(13, 7);
//! assert_eq!(cands.len(), 7);
//! ```

pub use adc_behav as behav;
pub use adc_mdac as mdac;
pub use adc_numerics as numerics;
pub use adc_serve as serve;
pub use adc_sfg as sfg;
pub use adc_spice as spice;
pub use adc_synth as synth;
pub use adc_topopt as topopt;
